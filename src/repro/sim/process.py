"""Generator-based cooperative processes.

A *process* is a Python generator driven by the simulator.  The generator
may yield:

* a ``float``/``int`` — sleep for that many simulated seconds;
* a :class:`Signal` — suspend until the signal is triggered; the value the
  signal was triggered with becomes the result of the ``yield`` expression.

Processes may be interrupted (:meth:`Process.interrupt`): the pending sleep
or wait is abandoned and an :class:`Interrupt` exception is thrown into the
generator, which may catch it to clean up or re-plan — this is how the
C-ARQ recovery loop is aborted when a new access point is reached.
"""

from __future__ import annotations

import typing
from collections.abc import Generator
from typing import Any

from repro.errors import SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator


class Interrupt(Exception):
    """Thrown into a process generator when it is interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Signal:
    """A one-to-many wake-up condition.

    Processes yield a signal to suspend on it; :meth:`trigger` resumes all
    current waiters with the given value.  A signal can be triggered many
    times; each trigger wakes only the processes waiting at that moment.
    Plain callbacks can also subscribe via :meth:`subscribe`.
    """

    __slots__ = ("name", "_waiters", "_callbacks",)

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list[Process] = []
        self._callbacks: list[typing.Callable[[Any], None]] = []

    def subscribe(self, callback: typing.Callable[[Any], None]) -> None:
        """Invoke *callback(value)* on every future trigger."""
        self._callbacks.append(callback)

    def unsubscribe(self, callback: typing.Callable[[Any], None]) -> None:
        """Remove a previously subscribed callback."""
        self._callbacks.remove(callback)

    def trigger(self, value: Any = None) -> None:
        """Wake all waiting processes and invoke subscribed callbacks."""
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            process._resume(value)
        for callback in list(self._callbacks):
            callback(value)

    def _add_waiter(self, process: Process) -> None:
        self._waiters.append(process)

    def _remove_waiter(self, process: Process) -> None:
        if process in self._waiters:
            self._waiters.remove(process)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"


class Process:
    """A generator being executed in simulated time.

    Created through :meth:`repro.sim.Simulator.process`.  The process starts
    at the simulation instant it was created (the first resumption is
    scheduled immediately, not run inline, so creation order does not leak
    into execution order).
    """

    __slots__ = (
        "_sim",
        "_generator",
        "name",
        "_alive",
        "_pending_event",
        "_waiting_on",
        "result",
        "done",
    )

    def __init__(self, sim: "Simulator", generator: Generator[Any, Any, Any], name: str = "") -> None:
        self._sim = sim
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._alive = True
        self._pending_event = None  # Event for a sleep, if sleeping
        self._waiting_on: Signal | None = None
        self.result: Any = None
        #: Signal triggered (with :attr:`result`) when the process finishes.
        self.done = Signal(f"{self.name}.done")
        # Kick-off: resume with None at the current instant.
        self._pending_event = sim.schedule(0.0, self._resume, None)

    @property
    def alive(self) -> bool:
        """True until the generator returns or raises."""
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Abort the process's current wait and throw :class:`Interrupt`.

        No-op on a dead process.  The exception is delivered immediately
        (synchronously), matching the semantics of SimPy interrupts.
        """
        if not self._alive:
            return
        self._clear_waits()
        self._step(Interrupt(cause), throw=True)

    def _clear_waits(self) -> None:
        if self._pending_event is not None:
            self._sim.cancel(self._pending_event)
            self._pending_event = None
        if self._waiting_on is not None:
            self._waiting_on._remove_waiter(self)
            self._waiting_on = None

    def _resume(self, value: Any) -> None:
        self._pending_event = None
        self._waiting_on = None
        self._step(value, throw=False)

    def _step(self, value: Any, *, throw: bool) -> None:
        if not self._alive:
            raise SimulationError(f"resuming finished process {self.name!r}")
        try:
            if throw:
                yielded = self._generator.throw(value)
            else:
                yielded = self._generator.send(value)
        except StopIteration as stop:
            self._alive = False
            self.result = stop.value
            self.done.trigger(self.result)
            return
        except Interrupt:
            # Interrupt not handled by the generator: the process dies quietly.
            self._alive = False
            self.done.trigger(None)
            return
        self._arm(yielded)

    def _arm(self, yielded: Any) -> None:
        """Install the wait described by what the generator yielded."""
        if isinstance(yielded, (int, float)):
            if yielded < 0:
                self._alive = False
                raise SimulationError(
                    f"process {self.name!r} yielded a negative delay {yielded!r}"
                )
            self._pending_event = self._sim.schedule(float(yielded), self._resume, None)
        elif isinstance(yielded, Signal):
            self._waiting_on = yielded
            yielded._add_waiter(self)
        else:
            self._alive = False
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {yielded!r}; "
                "yield a delay (seconds) or a Signal"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "done"
        return f"Process({self.name!r}, {state})"
