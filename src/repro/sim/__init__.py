"""Discrete-event simulation kernel.

A small, dependency-free DES engine in the style of SimPy, built for this
reproduction because the evaluation environment ships no simulation
framework.  It provides:

* :class:`Simulator` — the event loop and clock;
* :class:`Event` / :class:`EventQueue` / :class:`SlotWheelQueue` —
  scheduled callbacks with deterministic FIFO tie-breaking, served by
  either the legacy binary heap or the slot-wheel calendar queue (the
  default; see :mod:`repro.sim.wheel`);
* :class:`Process` / :class:`Signal` — generator-based cooperative
  processes (``yield delay`` / ``yield signal``);
* :class:`RandomStreams` — named, independently-seeded numpy generators so
  every stochastic component is reproducible in isolation;
* :class:`Monitor` — time-series probes for instrumentation.
"""

from repro.sim.event import Event, Priority
from repro.sim.scheduler import EventQueue, make_event_queue
from repro.sim.wheel import SlotWheelQueue
from repro.sim.process import Interrupt, Process, Signal
from repro.sim.random import RandomStreams
from repro.sim.monitor import Monitor
from repro.sim.simulator import Simulator, gc_paused

__all__ = [
    "Event",
    "EventQueue",
    "SlotWheelQueue",
    "make_event_queue",
    "gc_paused",
    "Interrupt",
    "Monitor",
    "Priority",
    "Process",
    "RandomStreams",
    "Signal",
    "Simulator",
]
