"""Time-series probes for simulation instrumentation."""

from __future__ import annotations

import math
from collections.abc import Iterator


class Monitor:
    """Records ``(time, value)`` samples and summarises them.

    Components call :meth:`record`; analysis code reads :attr:`times`,
    :attr:`values` or the summary statistics.  Values must be numeric.

    Scenarios allocate one monitor per node (plus per-flow collectors),
    so the class is slotted like the other per-node hot objects — see
    the ``kernel.hot_object_alloc`` bench and its memory test.
    """

    __slots__ = ("name", "_times", "_values")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def record(self, time: float, value: float) -> None:
        """Append a sample.  Times must be non-decreasing."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"monitor {self.name!r}: sample at t={time} before last t={self._times[-1]}"
            )
        self._times.append(time)
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self._times, self._values))

    @property
    def times(self) -> list[float]:
        """Sample timestamps (copy)."""
        return list(self._times)

    @property
    def values(self) -> list[float]:
        """Sample values (copy)."""
        return list(self._values)

    # -- summary statistics ---------------------------------------------------

    def mean(self) -> float:
        """Arithmetic mean of the sample values.

        Raises
        ------
        ValueError
            If the monitor is empty.
        """
        if not self._values:
            raise ValueError(f"monitor {self.name!r} has no samples")
        return sum(self._values) / len(self._values)

    def std(self) -> float:
        """Sample standard deviation (ddof=1); 0.0 for a single sample."""
        n = len(self._values)
        if n == 0:
            raise ValueError(f"monitor {self.name!r} has no samples")
        if n == 1:
            return 0.0
        mu = self.mean()
        return math.sqrt(sum((v - mu) ** 2 for v in self._values) / (n - 1))

    def minimum(self) -> float:
        """Smallest sample value."""
        if not self._values:
            raise ValueError(f"monitor {self.name!r} has no samples")
        return min(self._values)

    def maximum(self) -> float:
        """Largest sample value."""
        if not self._values:
            raise ValueError(f"monitor {self.name!r} has no samples")
        return max(self._values)

    def time_average(self) -> float:
        """Time-weighted average, treating each value as holding until the
        next sample (zero-order hold).  Needs at least two samples.
        """
        if len(self._values) < 2:
            raise ValueError(f"monitor {self.name!r} needs >=2 samples for a time average")
        total = 0.0
        for i in range(len(self._values) - 1):
            total += self._values[i] * (self._times[i + 1] - self._times[i])
        span = self._times[-1] - self._times[0]
        if span == 0.0:
            return self.mean()
        return total / span

    def clear(self) -> None:
        """Drop all samples."""
        self._times.clear()
        self._values.clear()
