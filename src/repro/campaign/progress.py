"""Campaign progress reporting: ticks, rate, and ETA.

Long campaigns run for minutes to hours; the reporter prints a compact
line as tasks finish — throttled so a fast cache-hit replay does not
flood the terminal — and a final summary distinguishing executed from
cached work.  The clock is injectable for tests.
"""

from __future__ import annotations

import sys
import time


def _format_duration(seconds: float) -> str:
    seconds = max(0, int(round(seconds)))
    minutes, secs = divmod(seconds, 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


class ProgressReporter:
    """Prints ``name: 12/40 tasks (3 cached) 2.1/s ETA 0:13`` lines."""

    def __init__(
        self,
        total: int,
        *,
        name: str = "campaign",
        stream=None,
        min_interval_s: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        self.total = total
        self.name = name
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self._clock = clock
        self._start = clock()
        self._last_emit = float("-inf")
        self.done = 0
        self.cached = 0
        self.failed = 0
        # Execution-rate base: cache-hit replays are (near-)instant store
        # lookups, while executions are full simulation rounds — one rate
        # over both skews the ETA badly after a big cached prefix (the
        # resume case: thousands of cached ticks during the store scan,
        # then real work).  Cached ticks before the first execution push
        # this base forward, so the execution rate — the one the ETA is
        # computed from, since everything remaining is an execution —
        # measures execution time only.
        self._exec_base = self._start
        self._exec_started = False

    @property
    def executed(self) -> int:
        return self.done - self.cached - self.failed

    def tick(self, *, cached: bool = False, failed: bool = False) -> None:
        """Record one finished task; maybe emit a progress line.

        A *failed* tick is a quarantined task: it counts toward ``done``
        (the campaign is past it) but not toward the execution rate —
        quarantine is bookkeeping, not a simulation round.
        """
        self.done += 1
        now = self._clock()
        if cached:
            self.cached += 1
            if not self._exec_started:
                self._exec_base = now
        elif failed:
            self.failed += 1
        else:
            self._exec_started = True
        if self.done < self.total and now - self._last_emit < self.min_interval_s:
            return
        self._last_emit = now
        self._emit(now)

    def _emit(self, now: float) -> None:
        parts = [f"{self.name}: {self.done}/{self.total} tasks"]
        if self.cached:
            cache_window = (
                self._exec_base if self._exec_started else now
            ) - self._start
            if cache_window > 0:
                parts.append(
                    f"({self.cached} cached @ {self.cached / cache_window:.0f}/s)"
                )
            else:
                parts.append(f"({self.cached} cached)")
        if self.failed:
            parts.append(f"[{self.failed} failed]")
        executed = self.executed
        exec_elapsed = now - self._exec_base
        if executed and exec_elapsed > 0:
            rate = executed / exec_elapsed
            parts.append(f"{rate:.1f}/s")
            remaining = self.total - self.done
            if remaining:
                parts.append(f"ETA {_format_duration(remaining / rate)}")
        print(" ".join(parts), file=self.stream)

    def summary(self) -> str:
        """One line describing the finished campaign."""
        elapsed = self._clock() - self._start
        failed = f", {self.failed} failed" if self.failed else ""
        return (
            f"{self.name}: {self.executed} executed, {self.cached} cached"
            f"{failed} of {self.total} tasks in {_format_duration(elapsed)}"
        )
