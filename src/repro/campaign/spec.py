"""Declarative campaign specifications.

A :class:`CampaignSpec` describes a whole study — a scenario kind, a base
configuration, a grid of parameter variations and a round count — as a
plain JSON-serialisable value.  :meth:`CampaignSpec.expand` flattens it
into one :class:`TaskSpec` per (grid point, round): the independent unit
of work the executor fans out over processes.

Every task is content-addressed: :meth:`TaskSpec.task_id` hashes the
canonical JSON of everything that determines the task's result (scenario,
config, overrides, seed, round index).  The result store keys rows by
this hash, which is what makes campaigns cacheable and resumable — the
same task always lands on the same row, no matter when or where it ran.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

from repro.errors import CampaignError
from repro.scenarios import get_scenario
from repro.scenarios.configs import (  # noqa: F401  (re-exported API)
    apply_override,
    config_from_dict,
    config_to_dict,
)


@dataclass(frozen=True)
class GridPoint:
    """One value on a grid axis.

    ``label`` is the human-facing parameter value (what ends up in
    ``SweepPoint.parameter``); ``overrides`` maps dotted config paths to
    the values realising it — one label may change several fields (a
    bigger platoon also needs more driver styles).
    """

    label: int | float | str
    overrides: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"label": self.label, "overrides": dict(self.overrides)}

    @staticmethod
    def from_dict(data: dict) -> "GridPoint":
        return GridPoint(label=data["label"], overrides=dict(data.get("overrides", {})))


@dataclass(frozen=True)
class GridAxis:
    """A named sweep dimension; the grid is the product of all axes."""

    name: str
    points: tuple[GridPoint, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise CampaignError(f"axis {self.name!r} has no points")

    def to_dict(self) -> dict:
        return {"name": self.name, "points": [p.to_dict() for p in self.points]}

    @staticmethod
    def from_dict(data: dict) -> "GridAxis":
        return GridAxis(
            name=data["name"],
            points=tuple(GridPoint.from_dict(p) for p in data["points"]),
        )


def axis(name: str, labels, path: str | None = None) -> GridAxis:
    """Convenience: one axis whose labels each override a single field."""
    target = path if path is not None else name
    return GridAxis(
        name=name,
        points=tuple(GridPoint(label=v, overrides={target: v}) for v in labels),
    )


@dataclass(frozen=True)
class TaskSpec:
    """One independent unit of work: one round at one grid point.

    A task carries everything needed to execute it in any process —
    parallel and serial runs are bit-identical because the simulation
    seed depends only on (``seed``, ``round_index``), never on execution
    order (see :mod:`repro.campaign.seeding`).
    """

    campaign: str
    scenario: str
    seed: int
    round_index: int
    labels: tuple
    overrides: dict
    base: dict

    def key(self) -> str:
        """Canonical JSON identifying this task's result."""
        payload = {
            "scenario": self.scenario,
            "seed": self.seed,
            "round": self.round_index,
            "base": self.base,
            "overrides": self.overrides,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def task_id(self) -> str:
        """Content hash of :meth:`key` — the store's row key."""
        return hashlib.sha256(self.key().encode()).hexdigest()

    def config(self):
        """Materialise the scenario configuration this task runs."""
        cls = get_scenario(self.scenario).config_cls
        cfg = config_from_dict(cls, self.base)
        cfg = replace(cfg, seed=self.seed)
        for path, value in sorted(self.overrides.items()):
            cfg = apply_override(cfg, path, value)
        return cfg


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative, JSON-serialisable description of a whole study.

    Attributes
    ----------
    name:
        Campaign identifier (store rows record it; reports print it).
    scenario:
        A registered scenario kind (see
        :func:`repro.scenarios.scenario_names`).
    seed:
        Campaign master seed.  With ``independent_seeds`` off (the
        default, matching the legacy sweeps) every grid point runs its
        rounds from this seed; on, each grid point derives its own seed
        from the master and its labels.
    rounds:
        Independent repetitions per grid point.
    base:
        JSON shape of the scenario base configuration (see
        :func:`config_to_dict`); grid points override fields of it.
    axes:
        Sweep dimensions; the task grid is their cartesian product.
    """

    name: str
    scenario: str
    seed: int
    rounds: int
    base: dict
    axes: tuple[GridAxis, ...] = ()
    independent_seeds: bool = False

    def __post_init__(self) -> None:
        get_scenario(self.scenario)  # raises CampaignError when unknown
        if self.rounds < 1:
            raise CampaignError("a campaign needs at least one round")

    # -- grid ----------------------------------------------------------------

    def points(self) -> list[tuple[tuple, dict]]:
        """Flat grid: (labels, merged overrides) per point, product order."""
        grid: list[tuple[tuple, dict]] = [((), {})]
        for ax in self.axes:
            grid = [
                (labels + (point.label,), {**overrides, **point.overrides})
                for labels, overrides in grid
                for point in ax.points
            ]
        return grid

    def expand(self) -> list[TaskSpec]:
        """The flat task list: every grid point times every round."""
        from repro.campaign.seeding import point_seed

        tasks = []
        for labels, overrides in self.points():
            seed = (
                point_seed(self.seed, labels) if self.independent_seeds else self.seed
            )
            for round_index in range(self.rounds):
                tasks.append(
                    TaskSpec(
                        campaign=self.name,
                        scenario=self.scenario,
                        seed=seed,
                        round_index=round_index,
                        labels=labels,
                        overrides=overrides,
                        base=self.base,
                    )
                )
        return tasks

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "scenario": self.scenario,
            "seed": self.seed,
            "rounds": self.rounds,
            "base": self.base,
            "axes": [ax.to_dict() for ax in self.axes],
            "independent_seeds": self.independent_seeds,
        }

    @staticmethod
    def from_dict(data: dict) -> "CampaignSpec":
        try:
            return CampaignSpec(
                name=data["name"],
                scenario=data["scenario"],
                seed=data["seed"],
                rounds=data["rounds"],
                base=dict(data["base"]),
                axes=tuple(GridAxis.from_dict(ax) for ax in data.get("axes", [])),
                independent_seeds=bool(data.get("independent_seeds", False)),
            )
        except KeyError as exc:
            raise CampaignError(f"campaign spec is missing field {exc}") from None

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "CampaignSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignError(f"campaign spec is not valid JSON: {exc}") from None
        return CampaignSpec.from_dict(data)

    def save(self, path) -> None:
        from repro.ioutil import atomic_write_text

        # Atomic: an interrupt mid-save must never leave a half-written
        # spec for a later --spec run (or resume) to choke on.
        atomic_write_text(path, self.to_json() + "\n")

    @staticmethod
    def load(path) -> "CampaignSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return CampaignSpec.from_json(handle.read())
