"""Campaign execution: supervised dispatch, process fan-out, caching.

``run_campaign`` expands a spec, skips every task already present in the
store (the cache/resume path), and executes the remainder — inline or
across a supervised pool of worker processes.  Rounds are i.i.d.
repetitions and the simulation seed of each task is fixed by its spec
(see :mod:`repro.campaign.seeding`), so scheduling order and worker
count never change a row: parallel speed is free of reproducibility
cost — and so are **retries**, which is what makes the fault-tolerance
layer here provably safe: a re-executed task must produce the identical
row.

Fault tolerance (PR 9; see ``docs/ROBUSTNESS.md``): the pool path is a
supervisor, not a fire-and-forget ``imap``.  Each worker owns a duplex
pipe; the parent tracks exactly which task every worker holds, so a
worker killed by OOM/segfault (or the chaos harness) is *detected* —
``exitcode`` set, or a torn result pipe — its task is requeued and
retried under the :class:`~repro.campaign.resilience.RetryPolicy`, and a
fresh worker is spawned in its place.  Hung workers are reaped by the
per-task wall-clock timeout.  Tasks that fail deterministically (the
task itself raises) are quarantined immediately into the
:class:`~repro.campaign.store.FailureLog` sidecar; when the pool keeps
dying without making progress the executor degrades to inline serial
execution rather than thrashing.  SIGINT/SIGTERM trigger a graceful
checkpoint: in-flight rows are drained into the store before workers
are terminated, so an interrupt loses at most work-in-progress that a
resume re-executes anyway.  The campaign always finishes with partial
results plus a failure summary instead of losing the run.

Campaign telemetry (``metrics=`` / ``repro campaign run --metrics``)
rides the same dispatch: each executed task runs with the metrics
registry enabled and reset, and its snapshot plus wall-clock duration
streams into a :class:`~repro.campaign.store.MetricsLog` sidecar the
moment the task finishes.  The snapshots never touch the result rows —
wall-clock numbers are non-deterministic, result rows are the
bit-identity surface.  Supervisor-side resilience counters
(``campaign.retries``, ``campaign.timeouts``, …) publish through the
obs registry and ride the campaign summary record.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import signal
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection

from repro.campaign.chaos import ChaosSpec
from repro.campaign.progress import ProgressReporter
from repro.campaign.resilience import (
    FailureKind,
    RetryPolicy,
    TaskFailure,
    classify_exception,
)
from repro.campaign.spec import CampaignSpec, TaskSpec
from repro.campaign.store import FailureLog, JsonlStore, MetricsLog, ResultStore
from repro.errors import CampaignError, ChaosError
from repro.obs import registry as metrics_registry
from repro.scenarios import get_scenario


def execute_task(task: TaskSpec) -> dict:
    """Run one task to completion and return its result row."""
    plugin = get_scenario(task.scenario)
    return plugin.run_round(task.config(), task.round_index)


def _execute_keyed(task: TaskSpec) -> tuple[str, str, dict]:
    """Plain runner: identify the result so completion order can be free."""
    return task.task_id(), task.key(), execute_task(task)


def _execute_instrumented(task: TaskSpec) -> tuple[str, str, dict, float, dict]:
    """Run one task with the metrics registry on; returns row + snapshot.

    Enable + reset happen here, in whichever process runs the task, so
    the snapshot covers exactly one task whether it executed inline or
    in a pool worker (fork inherits an enabled registry, spawn re-imports
    a disabled one — enabling per task makes both correct).
    """
    registry = metrics_registry()
    registry.enable()
    registry.reset()
    start = time.perf_counter()
    row = execute_task(task)
    elapsed_s = time.perf_counter() - start
    return task.task_id(), task.key(), row, elapsed_s, registry.snapshot()


@dataclass(frozen=True)
class CampaignRunStats:
    """What one ``run_campaign`` call did."""

    total: int
    executed: int
    cached: int
    workers: int
    elapsed_s: float
    failed: int = 0
    retried: int = 0
    timeouts: int = 0
    worker_restarts: int = 0
    chaos_injections: int = 0
    serial_fallback: bool = False
    interrupted: bool = False
    failures: tuple[TaskFailure, ...] = ()

    def failure_summary(self) -> str:
        """One line per quarantined task (empty string when clean)."""
        return "\n".join(
            f"  {f.task_id[:12]}: {f.failure} after {f.attempts} attempt(s) — "
            f"{f.error}"
            for f in self.failures
        )


def _pool_context():
    """Fork where available (cheap, inherits imports), else spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


# -- attempt execution (shared by pool workers and the inline path) ----------


def _run_attempt(
    task: TaskSpec, attempt: int, instrumented: bool, chaos: ChaosSpec | None
) -> tuple:
    """Execute one attempt, chaos included; returns a result envelope.

    Envelopes are plain picklable tuples::

        ("row", payload, attempt, torn)
        ("failed", attempt, failure_kind, error, traceback_or_None)

    ``crash``/``hang`` injections act *before* the task runs (and a
    crash never returns at all — the supervisor sees the worker die);
    ``torn-write`` lets the task finish and flags the envelope so the
    parent tears the store append instead of committing it.
    """
    kind = chaos.draw(task.task_id(), attempt) if chaos is not None else None
    if kind == "crash":
        # The OOM/segfault shape: no cleanup, no goodbye, a torn pipe.
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == "hang":
        time.sleep(chaos.hang_s)  # type: ignore[union-attr]
        kind = None  # survived un-reaped: run the task normally
    try:
        if kind == "raise":
            raise ChaosError(
                f"injected failure (task {task.task_id()[:12]}, "
                f"attempt {attempt})"
            )
        runner = _execute_instrumented if instrumented else _execute_keyed
        payload = runner(task)
    except Exception as exc:
        failure = classify_exception(exc)
        tb = traceback.format_exc() if failure == FailureKind.TASK_ERROR else None
        return ("failed", attempt, failure, f"{type(exc).__name__}: {exc}", tb)
    return ("row", payload, attempt, kind == "torn-write")


def _pool_worker_main(
    conn, instrumented: bool, chaos: ChaosSpec | None
) -> None:
    """Worker loop: receive ``(task, attempt)``, send one envelope back.

    SIGINT is ignored — a terminal Ctrl-C reaches the whole process
    group, and the graceful-checkpoint protocol wants workers to finish
    their in-flight task so the parent can drain the rows; the parent
    terminates stragglers itself after the grace period.
    """
    with contextlib.suppress(ValueError, OSError):
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        task, attempt = item
        try:
            envelope = _run_attempt(task, attempt, instrumented, chaos)
        except Exception as exc:
            # Defensive: _run_attempt already classifies task errors;
            # anything reaching here is an executor bug, reported as a
            # deterministic failure rather than silently dying.
            envelope = (
                "failed",
                attempt,
                FailureKind.TASK_ERROR,
                f"{type(exc).__name__}: {exc}",
                traceback.format_exc(),
            )
        try:
            conn.send(envelope)
        except (BrokenPipeError, OSError):
            return


# -- supervisor bookkeeping ---------------------------------------------------


@dataclass(slots=True)
class _QueuedAttempt:
    """One task attempt awaiting dispatch (``not_before`` gates backoff)."""

    task: TaskSpec
    attempt: int
    not_before: float


@dataclass(slots=True)
class _Worker:
    """One supervised pool worker and what it currently holds."""

    process: object
    conn: object
    item: _QueuedAttempt | None = None
    deadline: float | None = None


class _StopFlag:
    """Set by the first SIGINT/SIGTERM; the loops checkpoint and exit."""

    __slots__ = ("stop",)

    def __init__(self) -> None:
        self.stop = False


@contextlib.contextmanager
def _graceful_signals(flag: _StopFlag):
    """Install the graceful-checkpoint handler for SIGINT/SIGTERM.

    First signal: set the flag — the dispatch loops stop assigning,
    drain in-flight rows into the store, and return with
    ``interrupted=True``.  Second signal: give up on the drain and
    raise :class:`KeyboardInterrupt` immediately.  Signal handlers only
    exist in the main thread; elsewhere this is a no-op and the caller
    keeps whatever handling it already has.
    """
    if threading.current_thread() is not threading.main_thread():
        yield flag
        return

    def handler(signum, frame):
        if flag.stop:
            raise KeyboardInterrupt
        flag.stop = True

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, handler)
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            continue
    try:
        yield flag
    finally:
        for sig, prior in previous.items():
            signal.signal(sig, prior)


class _CampaignState:
    """Mutable bookkeeping shared by the inline and supervised paths."""

    def __init__(
        self,
        store: ResultStore,
        metrics: MetricsLog | None,
        failures: FailureLog | None,
        progress: ProgressReporter | None,
        policy: RetryPolicy,
    ) -> None:
        self.store = store
        self.metrics = metrics
        self.failures = failures
        self.progress = progress
        self.policy = policy
        self.recorded: set[str] = set()
        self.quarantined: list[TaskFailure] = []
        self.retried = 0
        self.timeouts = 0
        self.worker_restarts = 0
        self.chaos_injections = 0
        self.consecutive_losses = 0
        self.serial_fallback = False

    def already_done(self, task: TaskSpec) -> bool:
        """Has this task's row landed (this run or a stale duplicate)?"""
        task_id = task.task_id()
        return task_id in self.recorded or self.store.has(task_id)

    def record_row(self, payload: tuple, instrumented: bool) -> None:
        """Persist one successful result envelope payload."""
        if instrumented:
            task_id, key, row, elapsed_s, snapshot = payload
        else:
            task_id, key, row = payload
        if task_id in self.recorded:
            return  # stale duplicate from a worker replaced after timeout
        if instrumented and self.metrics is not None:
            self.metrics.put_task(task_id, key, elapsed_s, snapshot)
        self.store.put(task_id, key, row)
        self.recorded.add(task_id)
        self.consecutive_losses = 0
        if self.progress is not None:
            self.progress.tick()

    def record_failure(
        self,
        task: TaskSpec,
        attempt: int,
        kind: str,
        error: str,
        tb: str | None = None,
    ) -> bool:
        """Log one failed attempt; ``True`` when the task may retry."""
        task_id, key = task.task_id(), task.key()
        if kind == FailureKind.TIMEOUT:
            self.timeouts += 1
        if kind in (FailureKind.WORKER_LOST, FailureKind.TIMEOUT):
            self.consecutive_losses += 1
        if self.failures is not None:
            self.failures.put_attempt(
                task_id, key, attempt, kind, error, traceback=tb
            )
        if self.policy.allows_retry(kind, attempt):
            self.retried += 1
            return True
        if self.failures is not None:
            self.failures.put_quarantine(task_id, key, attempt, kind, error)
        self.quarantined.append(
            TaskFailure(
                task_id=task_id,
                key=key,
                attempts=attempt,
                failure=kind,
                error=error,
            )
        )
        if self.progress is not None:
            self.progress.tick(failed=True)
        return False

    def requeued(self, task: TaskSpec, attempt: int) -> _QueuedAttempt:
        """The retry attempt for *task* with its keyed backoff gate."""
        return _QueuedAttempt(
            task=task,
            attempt=attempt + 1,
            not_before=time.monotonic()
            + self.policy.delay_s(task.task_id(), attempt),
        )

    def publish_obs_counters(self) -> None:
        """Mirror the resilience counters into the obs registry."""
        registry = metrics_registry()
        if not registry.enabled:
            return
        registry.counter("campaign.retries").inc(self.retried)
        registry.counter("campaign.timeouts").inc(self.timeouts)
        registry.counter("campaign.worker_restarts").inc(self.worker_restarts)
        registry.counter("campaign.quarantined").inc(len(self.quarantined))
        registry.counter("campaign.chaos_injections").inc(self.chaos_injections)
        if self.serial_fallback:
            registry.counter("campaign.serial_fallbacks").inc()

    def resilience_summary(self) -> dict:
        """The resilience block of the campaign telemetry record."""
        return {
            "retried": self.retried,
            "timeouts": self.timeouts,
            "worker_restarts": self.worker_restarts,
            "quarantined": len(self.quarantined),
            "chaos_injections": self.chaos_injections,
            "serial_fallback": self.serial_fallback,
        }


def _apply_torn_write(
    state: _CampaignState, task: TaskSpec, payload: tuple, instrumented: bool
) -> None:
    """Tear the result append (chaos) and route through torn-tail recovery.

    Only a :class:`JsonlStore` has a file to tear; other stores commit
    the row normally (the injection degrades to a no-op rather than
    faking a failure mode the store cannot have).
    """
    if not isinstance(state.store, JsonlStore):
        state.record_row(payload, instrumented)
        return
    if instrumented:
        task_id, key, row = payload[0], payload[1], payload[2]
    else:
        task_id, key, row = payload
    if task_id in state.recorded:
        return
    state.store.tear(task_id, key, row)
    # The recovery path an interrupted run takes on resume, exercised
    # live: reload truncates the torn fragment and rebuilds the index.
    state.store.reload()
    if state.store.has(task_id):  # pragma: no cover - tear always loses it
        state.recorded.add(task_id)


def _handle_envelope(
    state: _CampaignState,
    task: TaskSpec,
    envelope: tuple,
    instrumented: bool,
    requeue,
) -> None:
    """Fold one worker envelope into the campaign state."""
    if envelope[0] == "row":
        _, payload, attempt, torn = envelope
        if torn:
            _apply_torn_write(state, task, payload, instrumented)
            if not state.already_done(task):
                if state.record_failure(
                    task, attempt, FailureKind.TORN_WRITE,
                    "result append torn mid-record (injected)",
                ):
                    requeue(state.requeued(task, attempt))
        else:
            state.record_row(payload, instrumented)
        return
    _, attempt, kind, error, tb = envelope
    if state.record_failure(task, attempt, kind, error, tb):
        requeue(state.requeued(task, attempt))


# -- inline (serial) execution ------------------------------------------------


def _run_inline(
    attempts: deque,
    instrumented: bool,
    chaos: ChaosSpec | None,
    state: _CampaignState,
    stop: _StopFlag,
) -> None:
    """Execute attempts in-process, honoring retry gates and the stop flag.

    Chaos degrades to its inline-safe kinds (``raise``/``torn-write``):
    a ``crash`` here would kill the campaign itself and a ``hang`` would
    stall it un-reapably — those faults need a supervisor above the
    process, which is exactly what the pool path provides.
    """
    inline_chaos = chaos.inline() if chaos is not None else None
    while attempts:
        if stop.stop:
            return
        item = attempts.popleft()
        if state.already_done(item.task):
            continue
        delay = item.not_before - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        if inline_chaos is not None and inline_chaos.draw(
            item.task.task_id(), item.attempt
        ):
            state.chaos_injections += 1
        envelope = _run_attempt(item.task, item.attempt, instrumented, inline_chaos)
        _handle_envelope(state, item.task, envelope, instrumented, attempts.append)


# -- the supervised pool ------------------------------------------------------

#: Dispatch-loop poll granularity: bounds stop-flag/timeout latency.
_POLL_S = 0.05


def _spawn_worker(ctx, instrumented: bool, chaos: ChaosSpec | None) -> _Worker:
    parent_conn, child_conn = ctx.Pipe(duplex=True)
    process = ctx.Process(
        target=_pool_worker_main,
        args=(child_conn, instrumented, chaos),
        daemon=True,
    )
    process.start()
    child_conn.close()
    return _Worker(process=process, conn=parent_conn)


def _stop_worker(worker: _Worker, *, graceful: bool) -> None:
    """Shut one worker down (politely when *graceful*, else SIGKILL)."""
    if graceful and worker.process.exitcode is None:
        with contextlib.suppress(BrokenPipeError, OSError):
            worker.conn.send(None)
        worker.process.join(timeout=0.5)
    if worker.process.exitcode is None:
        worker.process.kill()
        worker.process.join(timeout=5.0)
    with contextlib.suppress(OSError):
        worker.conn.close()


def _receive(state: _CampaignState, worker: _Worker, instrumented, requeue) -> bool:
    """Drain one envelope from *worker* if available; ``True`` when its
    in-flight slot was cleared (result received and folded)."""
    try:
        if not worker.conn.poll(0):
            return False
        envelope = worker.conn.recv()
    except Exception:
        # A torn pipe mid-message: the worker is dying; the liveness
        # check picks the loss up and requeues the task.
        return False
    item = worker.item
    worker.item = None
    worker.deadline = None
    if item is not None:
        _handle_envelope(state, item.task, envelope, instrumented, requeue)
    return True


class _Supervisor:
    """The pool dispatch loop: assign, watch, reap, respawn, drain."""

    def __init__(
        self,
        ctx,
        workers: int,
        instrumented: bool,
        chaos: ChaosSpec | None,
        state: _CampaignState,
        stop: _StopFlag,
    ) -> None:
        self.ctx = ctx
        self.target_workers = workers
        self.instrumented = instrumented
        self.chaos = chaos
        self.state = state
        self.stop = stop
        self.pool: list[_Worker] = []
        self.pending: deque[_QueuedAttempt] = deque()
        self.waiting: list[_QueuedAttempt] = []

    # -- queue plumbing ------------------------------------------------------

    def requeue(self, item: _QueuedAttempt) -> None:
        self.waiting.append(item)

    def _promote_ripe(self, now: float) -> None:
        if not self.waiting:
            return
        ripe = [qa for qa in self.waiting if qa.not_before <= now]
        if ripe:
            self.waiting = [qa for qa in self.waiting if qa.not_before > now]
            self.pending.extend(ripe)

    def _requeue_in_flight(self) -> None:
        """Push every busy worker's task back onto the queue (same
        attempt: the attempt never completed, and chaos draws are keyed
        by attempt number, so re-dispatching replays deterministically)."""
        for worker in self.pool:
            if worker.item is not None:
                self.pending.appendleft(worker.item)
                worker.item = None
                worker.deadline = None

    # -- worker lifecycle ----------------------------------------------------

    def _handle_loss(self, worker: _Worker, kind: str, detail: str) -> None:
        item = worker.item
        worker.item = None
        worker.deadline = None
        if item is not None and not self.state.already_done(item.task):
            if self.state.record_failure(item.task, item.attempt, kind, detail):
                self.requeue(self.state.requeued(item.task, item.attempt))

    def _check_workers(self, now: float) -> None:
        policy = self.state.policy
        survivors: list[_Worker] = []
        for worker in self.pool:
            exited = worker.process.exitcode is not None
            if exited:
                # Drain a result that raced the death before declaring
                # the task lost with the worker.
                _receive(self.state, worker, self.instrumented, self.requeue)
            if exited and worker.item is not None:
                self._handle_loss(
                    worker,
                    FailureKind.WORKER_LOST,
                    f"worker died (exitcode {worker.process.exitcode})",
                )
                _stop_worker(worker, graceful=False)
                self.state.worker_restarts += 1
            elif exited:
                _stop_worker(worker, graceful=False)
            elif (
                worker.item is not None
                and worker.deadline is not None
                and now > worker.deadline
            ):
                if _receive(self.state, worker, self.instrumented, self.requeue):
                    survivors.append(worker)  # finished just in time
                    continue
                timeout_s = policy.timeout_s
                self._handle_loss(
                    worker,
                    FailureKind.TIMEOUT,
                    f"task exceeded the {timeout_s:.1f} s wall-clock budget",
                )
                _stop_worker(worker, graceful=False)
                self.state.worker_restarts += 1
            else:
                survivors.append(worker)
        self.pool = survivors

    def _replenish(self) -> None:
        demand = len(self.pending) + sum(
            1 for worker in self.pool if worker.item is not None
        )
        while len(self.pool) < min(self.target_workers, max(demand, 1)):
            if not self.pending and all(w.item is None for w in self.pool):
                break
            self.pool.append(
                _spawn_worker(self.ctx, self.instrumented, self.chaos)
            )

    def _assign(self) -> None:
        for worker in self.pool:
            if worker.item is not None:
                continue
            item = None
            while self.pending:
                candidate = self.pending.popleft()
                if not self.state.already_done(candidate.task):
                    item = candidate
                    break
            if item is None:
                return
            try:
                worker.conn.send((item.task, item.attempt))
            except (BrokenPipeError, OSError):
                # Died idle between liveness checks: put the task back;
                # the next loop iteration reaps and replaces the worker.
                self.pending.appendleft(item)
                continue
            if self.chaos is not None and self.chaos.draw(
                item.task.task_id(), item.attempt
            ):
                self.state.chaos_injections += 1
            worker.item = item
            timeout_s = self.state.policy.timeout_s
            worker.deadline = (
                time.monotonic() + timeout_s if timeout_s is not None else None
            )

    # -- the loop ------------------------------------------------------------

    def run(self, tasks: list[TaskSpec]) -> deque:
        """Dispatch until done, stopped, or fallen back; returns leftovers.

        A non-empty return means the pool kept dying
        (``policy.restart_limit`` consecutive losses with no progress):
        the caller finishes the remaining attempts inline.
        """
        self.pending = deque(
            _QueuedAttempt(task=task, attempt=1, not_before=0.0)
            for task in tasks
        )
        try:
            while True:
                now = time.monotonic()
                self._promote_ripe(now)
                self._check_workers(now)
                if self.stop.stop:
                    break
                if self.state.consecutive_losses >= self.state.policy.restart_limit:
                    # The pool is dying faster than it finishes tasks:
                    # stop burning processes and degrade to serial.
                    self.state.serial_fallback = True
                    break
                self._replenish()
                self._assign()
                busy = [w for w in self.pool if w.item is not None]
                if not busy and not self.pending and not self.waiting:
                    return deque()
                self._wait(busy, now)
        finally:
            self._drain_and_stop()
        leftovers = deque(self.pending)
        leftovers.extend(sorted(self.waiting, key=lambda qa: qa.not_before))
        self.pending = deque()
        self.waiting = []
        return leftovers

    def _wait(self, busy: list[_Worker], now: float) -> None:
        """Block until a result is ready, a gate opens, or a tick passes."""
        timeout = _POLL_S
        if not busy and self.waiting:
            gate = min(qa.not_before for qa in self.waiting) - now
            timeout = max(min(gate, 0.25), 0.0)
        if busy:
            ready = connection.wait([w.conn for w in busy], timeout=timeout)
            by_conn = {w.conn: w for w in busy}
            for conn in ready:
                _receive(
                    self.state, by_conn[conn], self.instrumented, self.requeue
                )
        elif timeout > 0:
            time.sleep(timeout)

    def _drain_and_stop(self) -> None:
        """Give in-flight workers the grace period, fold their rows,
        then shut the pool down (the graceful-checkpoint tail)."""
        deadline = time.monotonic() + self.state.policy.drain_grace_s
        while any(w.item is not None for w in self.pool):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            busy = [
                w
                for w in self.pool
                if w.item is not None and w.process.exitcode is None
            ]
            if not busy:
                break
            ready = connection.wait(
                [w.conn for w in busy], timeout=min(remaining, _POLL_S * 4)
            )
            by_conn = {w.conn: w for w in busy}
            for conn in ready:
                _receive(
                    self.state, by_conn[conn], self.instrumented, self.requeue
                )
            for worker in self.pool:
                if worker.item is not None and worker.process.exitcode is not None:
                    # Died during the drain: its task goes back to the
                    # queue for the resume (or the serial fallback).
                    self.pending.appendleft(worker.item)
                    worker.item = None
        self._requeue_in_flight()
        for worker in self.pool:
            _stop_worker(worker, graceful=True)
        self.pool = []


# -- the public entry point ---------------------------------------------------


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore,
    *,
    workers: int = 1,
    progress: ProgressReporter | None = None,
    metrics: MetricsLog | None = None,
    failures: FailureLog | None = None,
    retry: RetryPolicy | None = None,
    chaos: ChaosSpec | None = None,
    raise_on_failure: bool = True,
) -> CampaignRunStats:
    """Execute every task of *spec* not already present in *store*.

    Parameters
    ----------
    spec:
        The campaign to run.
    store:
        Result store consulted for cached rows and extended with new
        ones; pass a fresh :class:`~repro.campaign.store.MemoryStore`
        for one-shot in-process sweeps or a
        :class:`~repro.campaign.store.JsonlStore` for resumable runs.
    workers:
        Process count; ``1`` executes inline (no pool), which is also
        the fallback when only one task is pending — and the degraded
        mode when the pool keeps dying (``retry.restart_limit``).
    progress:
        Optional reporter ticked once per task (cached and quarantined
        ones included).
    metrics:
        Optional telemetry sidecar: every executed task runs with the
        metrics registry enabled and streams its snapshot here, plus a
        final per-campaign summary record.  Cached tasks produce no
        metrics (nothing ran).
    failures:
        Optional :class:`~repro.campaign.store.FailureLog` sidecar
        receiving one record per failed attempt and one quarantine
        record per task the executor gave up on.
    retry:
        The :class:`~repro.campaign.resilience.RetryPolicy`; defaults to
        ``RetryPolicy()`` (3 attempts, keyed-jitter exponential backoff,
        no per-task timeout).
    chaos:
        Optional deterministic fault-injection schedule (tests/CI; see
        :mod:`repro.campaign.chaos`).
    raise_on_failure:
        When ``True`` (default), quarantined tasks raise a summarising
        :class:`~repro.errors.CampaignError` *after* the campaign has
        finished everything else — partial results are already durable
        in the store by then.  The CLI passes ``False`` and turns the
        stats into an exit code instead.

    The run always makes maximal progress: a failing task never aborts
    the other tasks, a dying worker is respawned and its task retried,
    and an interrupt (SIGINT/SIGTERM) checkpoints gracefully — in-flight
    rows are drained, sidecars stay consistent, and ``interrupted=True``
    comes back in the stats.
    """
    if workers < 1:
        raise CampaignError("need at least one worker")
    policy = retry if retry is not None else RetryPolicy()
    start = time.perf_counter()
    tasks = spec.expand()
    pending: list[TaskSpec] = []
    cached = 0
    for task in tasks:
        if store.has(task.task_id()):
            cached += 1
            if progress is not None:
                progress.tick(cached=True)
        else:
            pending.append(task)

    instrumented = metrics is not None
    state = _CampaignState(store, metrics, failures, progress, policy)
    stop = _StopFlag()

    # The instrumented runner enables the process-wide registry; remember
    # the caller's state so an inline metrics run does not leak "enabled"
    # into whatever the process does next.
    was_enabled = metrics_registry().enabled
    try:
        with _graceful_signals(stop):
            if workers == 1 or len(pending) <= 1:
                attempts = deque(
                    _QueuedAttempt(task=task, attempt=1, not_before=0.0)
                    for task in pending
                )
                _run_inline(attempts, instrumented, chaos, state, stop)
            else:
                supervisor = _Supervisor(
                    _pool_context(), workers, instrumented, chaos, state, stop
                )
                leftovers = supervisor.run(pending)
                if leftovers and not stop.stop:
                    _run_inline(leftovers, instrumented, chaos, state, stop)
    finally:
        if metrics is not None and not was_enabled:
            metrics_registry().disable()

    state.publish_obs_counters()
    stats = CampaignRunStats(
        total=len(tasks),
        executed=len(state.recorded),
        cached=cached,
        workers=workers,
        elapsed_s=time.perf_counter() - start,
        failed=len(state.quarantined),
        retried=state.retried,
        timeouts=state.timeouts,
        worker_restarts=state.worker_restarts,
        chaos_injections=state.chaos_injections,
        serial_fallback=state.serial_fallback,
        interrupted=stop.stop,
        failures=tuple(state.quarantined),
    )
    if metrics is not None:
        metrics.put_campaign({
            "name": spec.name,
            "scenario": spec.scenario,
            "total": stats.total,
            "executed": stats.executed,
            "cached": stats.cached,
            "workers": stats.workers,
            "elapsed_s": stats.elapsed_s,
            "interrupted": stats.interrupted,
            "resilience": state.resilience_summary(),
        })
    if stats.failed and raise_on_failure and not stats.interrupted:
        raise CampaignError(
            f"campaign {spec.name!r} finished with {stats.failed} "
            f"quarantined task(s):\n{stats.failure_summary()}"
        )
    return stats
