"""Campaign execution: task dispatch, process fan-out, caching.

``run_campaign`` expands a spec, skips every task already present in the
store (the cache/resume path), and executes the remainder — serially or
across a ``multiprocessing`` pool.  Rounds are i.i.d. repetitions and the
simulation seed of each task is fixed by its spec (see
:mod:`repro.campaign.seeding`), so scheduling order and worker count
never change a row: parallel speed is free of reproducibility cost.

The worker function is a module-level single-task runner so it pickles
into pool processes; each task resolves its scenario plugin from the
registry, builds one round, runs it, and reduces it to the JSON row
stored for reporting — no per-scenario code lives here.

Campaign telemetry (``metrics=`` / ``repro campaign run --metrics``)
rides the same dispatch: each executed task runs with the metrics
registry enabled and reset, and its snapshot plus wall-clock duration
streams into a :class:`~repro.campaign.store.MetricsLog` sidecar the
moment the task finishes.  The snapshots never touch the result rows —
wall-clock numbers are non-deterministic, result rows are the
bit-identity surface — and instrumentation takes no RNG draws, so rows
computed with metrics on equal rows computed with metrics off
(``tests/scenarios/test_fast_path_ab.py`` pins this).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass

from repro.campaign.progress import ProgressReporter
from repro.campaign.spec import CampaignSpec, TaskSpec
from repro.campaign.store import MetricsLog, ResultStore
from repro.errors import CampaignError
from repro.obs import registry as metrics_registry
from repro.scenarios import get_scenario


def execute_task(task: TaskSpec) -> dict:
    """Run one task to completion and return its result row."""
    plugin = get_scenario(task.scenario)
    return plugin.run_round(task.config(), task.round_index)


def _execute_keyed(task: TaskSpec) -> tuple[str, str, dict]:
    """Pool worker: identify the result so completion order can be free."""
    return task.task_id(), task.key(), execute_task(task)


def _execute_instrumented(task: TaskSpec) -> tuple[str, str, dict, float, dict]:
    """Run one task with the metrics registry on; returns row + snapshot.

    Enable + reset happen here, in whichever process runs the task, so
    the snapshot covers exactly one task whether it executed inline or
    in a pool worker (fork inherits an enabled registry, spawn re-imports
    a disabled one — enabling per task makes both correct).
    """
    registry = metrics_registry()
    registry.enable()
    registry.reset()
    start = time.perf_counter()
    row = execute_task(task)
    elapsed_s = time.perf_counter() - start
    return task.task_id(), task.key(), row, elapsed_s, registry.snapshot()


@dataclass(frozen=True)
class CampaignRunStats:
    """What one ``run_campaign`` call did."""

    total: int
    executed: int
    cached: int
    workers: int
    elapsed_s: float


def _pool_context():
    """Fork where available (cheap, inherits imports), else spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore,
    *,
    workers: int = 1,
    progress: ProgressReporter | None = None,
    metrics: MetricsLog | None = None,
) -> CampaignRunStats:
    """Execute every task of *spec* not already present in *store*.

    Parameters
    ----------
    spec:
        The campaign to run.
    store:
        Result store consulted for cached rows and extended with new
        ones; pass a fresh :class:`~repro.campaign.store.MemoryStore`
        for one-shot in-process sweeps or a
        :class:`~repro.campaign.store.JsonlStore` for resumable runs.
    workers:
        Process count; ``1`` executes inline (no pool), which is also
        the fallback when only one task is pending.
    progress:
        Optional reporter ticked once per task (cached ones included).
    metrics:
        Optional telemetry sidecar: every executed task runs with the
        metrics registry enabled and streams its snapshot here, plus a
        final per-campaign summary record.  Cached tasks produce no
        metrics (nothing ran).
    """
    if workers < 1:
        raise CampaignError("need at least one worker")
    start = time.perf_counter()
    tasks = spec.expand()
    pending: list[TaskSpec] = []
    cached = 0
    for task in tasks:
        if store.has(task.task_id()):
            cached += 1
            if progress is not None:
                progress.tick(cached=True)
        else:
            pending.append(task)

    runner = _execute_keyed if metrics is None else _execute_instrumented

    def record(result) -> None:
        if metrics is None:
            task_id, key, row = result
        else:
            task_id, key, row, elapsed_s, snapshot = result
            metrics.put_task(task_id, key, elapsed_s, snapshot)
        store.put(task_id, key, row)
        if progress is not None:
            progress.tick()

    # The instrumented runner enables the process-wide registry; remember
    # the caller's state so an inline metrics run does not leak "enabled"
    # into whatever the process does next.
    was_enabled = metrics_registry().enabled
    try:
        if workers == 1 or len(pending) <= 1:
            for task in pending:
                record(runner(task))
        else:
            ctx = _pool_context()
            with ctx.Pool(processes=min(workers, len(pending))) as pool:
                # Unordered: each row is persisted the moment its task
                # finishes, so an interrupt behind a straggler never discards
                # completed work the resumable store exists to preserve.
                for result in pool.imap_unordered(runner, pending, chunksize=1):
                    record(result)
    finally:
        if metrics is not None and not was_enabled:
            metrics_registry().disable()

    stats = CampaignRunStats(
        total=len(tasks),
        executed=len(pending),
        cached=cached,
        workers=workers,
        elapsed_s=time.perf_counter() - start,
    )
    if metrics is not None:
        metrics.put_campaign({
            "name": spec.name,
            "scenario": spec.scenario,
            "total": stats.total,
            "executed": stats.executed,
            "cached": stats.cached,
            "workers": stats.workers,
            "elapsed_s": stats.elapsed_s,
        })
    return stats
