"""Fault-tolerance policy for campaign execution: retries, backoff,
timeouts, and failure classification.

The paper's whole premise is graceful operation under loss — C-ARQ
treats a dropped frame as routine and recovers it from cooperators — and
this module gives the execution layer the same posture.  Because every
task's rows are bit-determined by its spec'd seed
(:mod:`repro.campaign.seeding`), a retry is provably free: the re-executed
task must produce the identical row, so recovering from a dead worker is
as safe as recovering a frame from a cooperator.

Failure taxonomy (see ``docs/ROBUSTNESS.md``):

* **task-error** — the task itself raised.  Deterministic: the same
  task raises the same error on every attempt, so retrying wastes work;
  the task is quarantined immediately.
* **transient** — an injected :class:`~repro.errors.ChaosError` (or any
  future marker of a recoverable in-task condition).  Retried.
* **worker-lost** — the worker process died (OOM kill, segfault,
  injected ``SIGKILL``).  The task is innocent until proven poison:
  retried, on a respawned worker.
* **timeout** — the task exceeded :attr:`RetryPolicy.timeout_s`
  wall-clock; the worker is killed and the task retried.
* **torn-write** — the task finished but its result append was torn
  (injected by the chaos harness; in production, a crash mid-append).
  The store recovers by truncation and the task is retried.

Backoff delays are **keyed**, not drawn from a wall-clock-seeded RNG:
the jitter for ``(task, attempt)`` comes from the splitmix64 mixer in
:mod:`repro.radio.keyed`, so a retry schedule replays bit-identically —
the same discipline every other stochastic choice in this repo follows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CampaignError, ChaosError
from repro.radio.keyed import KeyedRandom, stable_hash64


class FailureKind:
    """String constants classifying one failed execution attempt."""

    TASK_ERROR = "task-error"
    TRANSIENT = "transient"
    WORKER_LOST = "worker-lost"
    TIMEOUT = "timeout"
    TORN_WRITE = "torn-write"


#: Kinds worth retrying: everything except a deterministic task error.
RETRYABLE_KINDS = frozenset({
    FailureKind.TRANSIENT,
    FailureKind.WORKER_LOST,
    FailureKind.TIMEOUT,
    FailureKind.TORN_WRITE,
})


def classify_exception(exc: BaseException) -> str:
    """Failure kind of an exception raised *inside* a task.

    :class:`~repro.errors.ChaosError` is the transient marker — injected
    faults are keyed per attempt, so a retry draws a fresh decision.
    Everything else a task raises is deterministic: the task's inputs
    are content-addressed, so the same exception recurs on every attempt
    and the task is poison.
    """
    if isinstance(exc, ChaosError):
        return FailureKind.TRANSIENT
    return FailureKind.TASK_ERROR


@dataclass(frozen=True)
class TaskFailure:
    """One task the executor gave up on (mirrors the quarantine record)."""

    task_id: str
    key: str
    attempts: int
    failure: str
    error: str


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor responds to failing tasks and dying workers.

    Attributes
    ----------
    max_attempts:
        Executions per task before it is quarantined (deterministic
        task errors quarantine on the first attempt regardless — see
        :func:`classify_exception`).
    timeout_s:
        Per-task wall-clock budget.  ``None`` disables timeouts.  Only
        enforceable in pool mode, where a hung worker can be killed
        without taking the campaign down; the inline path cannot preempt
        itself.
    backoff_base_s / backoff_factor / backoff_max_s:
        Exponential backoff before retry *n* (1-based):
        ``min(backoff_max_s, backoff_base_s * backoff_factor**(n-1))``.
    jitter:
        Fractional spread applied to the backoff, ``delay * (1 ± jitter)``,
        drawn via keyed splitmix64 from ``(task, attempt)`` — replayable,
        never wall-clock seeded.  ``0`` disables jitter.
    jitter_seed:
        Seed material of the jitter stream (campaign-level constant).
    restart_limit:
        Consecutive worker losses/timeouts *without an intervening
        success* before the executor stops respawning the pool and
        degrades to inline serial execution.
    drain_grace_s:
        On SIGINT/SIGTERM (and at pool shutdown), how long in-flight
        workers get to finish so their rows are drained into the store
        before they are terminated.
    """

    max_attempts: int = 3
    timeout_s: float | None = None
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    backoff_max_s: float = 10.0
    jitter: float = 0.5
    jitter_seed: int = 2008
    restart_limit: int = 8
    drain_grace_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise CampaignError("retry policy needs max_attempts >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise CampaignError("retry policy timeout_s must be positive")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise CampaignError("retry policy backoff must be non-negative")
        if self.backoff_factor < 1.0:
            raise CampaignError("retry policy backoff_factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise CampaignError("retry policy jitter must be in [0, 1)")
        if self.restart_limit < 1:
            raise CampaignError("retry policy restart_limit must be >= 1")
        if self.drain_grace_s < 0:
            raise CampaignError("retry policy drain_grace_s must be >= 0")

    def delay_s(self, task_id: str, attempt: int) -> float:
        """Backoff before retrying *task_id* after failed attempt *attempt*.

        A pure function of ``(jitter_seed, task_id, attempt)``: retry
        schedules replay bit-identically across runs, and distinct tasks
        retrying after one pool crash spread out instead of stampeding.
        """
        base = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
        )
        if self.jitter <= 0.0 or base <= 0.0:
            return base
        u = KeyedRandom(self.jitter_seed).uniform(stable_hash64(task_id), attempt)
        return base * (1.0 + self.jitter * (2.0 * u - 1.0))

    def allows_retry(self, kind: str, attempt: int) -> bool:
        """May a task that failed with *kind* on attempt *attempt* retry?"""
        return kind in RETRYABLE_KINDS and attempt < self.max_attempts
