"""Read-only integrity verification for campaign stores and sidecars.

``repro campaign verify`` answers, with a CI-usable exit code, the
question an operator (or a pipeline gate) asks after a crash, a chaos
run, or an interrupted campaign: *is this store intact, and does it
account for every task?*  The loaders in :mod:`repro.campaign.store`
already tolerate a torn tail — but they **repair** it by truncation;
this module never writes a byte.  It re-implements the same line
discipline read-only, so verification can run against a store that
another process still holds open.

Checks, in order:

* every result-store line decodes to a well-shaped record (a defective
  *final* line is a warning — the torn-tail shape a resume repairs —
  anywhere else it is corruption, an error);
* duplicate ``task_id`` rows are counted (legal: last-wins append
  semantics — reported so an operator sees re-runs happened);
* the ``.metrics`` and ``.failures`` sidecars, when present, pass the
  same line discipline;
* with a spec: every expanded task is **accounted** — either a row in
  the store or a quarantine record in the failure log (missing tasks
  are errors: the campaign is incomplete); rows for task ids the spec
  does not expand are warnings (a stale store or edited spec);
* a task that is both quarantined *and* stored is a warning — a later
  run succeeded where an earlier one gave up, so the quarantine record
  is stale.

Exit-code mapping used by the CLI: ``0`` — clean (warnings allowed with
``--strict`` absent); ``1`` — errors (or warnings under ``--strict``);
``2`` — usage problems (missing file, unreadable spec).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.campaign.spec import CampaignSpec
from repro.campaign.store import FailureLog, MetricsLog
from repro.errors import CampaignError

#: Severity levels of verification findings.
ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class VerifyFinding:
    """One problem (or oddity) found in a store or sidecar."""

    severity: str
    message: str


@dataclass(frozen=True)
class VerifyReport:
    """Everything ``verify_store`` learned about one store."""

    store_path: str
    rows: int = 0
    distinct_tasks: int = 0
    duplicates: int = 0
    metrics_records: int = 0
    failure_attempts: int = 0
    quarantined: int = 0
    missing: tuple[str, ...] = ()
    unknown: tuple[str, ...] = ()
    findings: tuple[VerifyFinding, ...] = field(default=())

    @property
    def errors(self) -> tuple[VerifyFinding, ...]:
        return tuple(f for f in self.findings if f.severity == ERROR)

    @property
    def warnings(self) -> tuple[VerifyFinding, ...]:
        return tuple(f for f in self.findings if f.severity == WARNING)

    @property
    def ok(self) -> bool:
        """No errors (warnings do not spoil a store)."""
        return not self.errors

    def render(self) -> str:
        """The multi-line human report the CLI prints."""
        lines = [
            f"store:      {self.store_path}",
            f"rows:       {self.rows} ({self.distinct_tasks} distinct"
            + (f", {self.duplicates} duplicate" if self.duplicates else "")
            + ")",
        ]
        if self.metrics_records:
            lines.append(f"metrics:    {self.metrics_records} records")
        if self.failure_attempts or self.quarantined:
            lines.append(
                f"failures:   {self.failure_attempts} attempt(s), "
                f"{self.quarantined} quarantined"
            )
        if self.missing:
            lines.append(f"missing:    {len(self.missing)} task(s)")
        for finding in self.findings:
            lines.append(f"{finding.severity}: {finding.message}")
        lines.append("verdict:    " + ("OK" if self.ok else "CORRUPT/INCOMPLETE"))
        return "\n".join(lines)


def _scan_readonly(
    path: str, extract, describe: str, findings: list[VerifyFinding]
) -> list:
    """The store line discipline, applied without repairing anything.

    Mirrors ``repro.campaign.store._scan_jsonl``: a defective final line
    is the torn-tail shape (warning — a resume truncates it away), a
    defective interior line is corruption (error).  Returns the values
    that did decode, so accounting can proceed past a torn tail.
    """
    with open(path, "r", encoding="utf-8", newline="") as handle:
        lines = handle.readlines()
    values = []
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            values.append(extract(json.loads(line)))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            if index == len(lines) - 1:
                findings.append(VerifyFinding(
                    WARNING,
                    f"{describe} has a torn final line (interrupted write; "
                    "a resume will truncate and re-execute it)",
                ))
            else:
                findings.append(VerifyFinding(
                    ERROR,
                    f"{describe} is corrupt at line {index + 1}: {exc}",
                ))
    return values


def _extract_row(record) -> tuple[str, dict]:
    task_id, row = record["task_id"], record["row"]
    if not isinstance(task_id, str) or not isinstance(row, dict):
        raise TypeError("result record fields have the wrong types")
    return task_id, row


def _extract_sidecar(record) -> dict:
    if not isinstance(record, dict) or not isinstance(record.get("kind"), str):
        raise TypeError("sidecar record is not a kind-tagged object")
    return record


def verify_store(
    store_path, spec: CampaignSpec | None = None
) -> VerifyReport:
    """Verify one store (and its sidecars) without modifying anything.

    With *spec*, additionally checks completeness: every task the spec
    expands must be accounted for — a stored row or a quarantine record.
    Raises :class:`CampaignError` when the store file does not exist
    (distinct from "exists but corrupt": the former is a usage error).
    """
    store_path = os.fspath(store_path)
    findings: list[VerifyFinding] = []
    if os.path.exists(store_path):
        pairs = _scan_readonly(store_path, _extract_row, "result store", findings)
    elif os.path.exists(FailureLog.sidecar_path(store_path)):
        # A campaign whose every task was quarantined writes the failure
        # sidecar but never a store row: account it, don't call it a typo.
        pairs = []
        findings.append(VerifyFinding(
            WARNING, "store file absent (no task ever produced a row)"
        ))
    else:
        raise CampaignError(f"no result store at {store_path!r}")
    stored: dict[str, int] = {}
    for task_id, _row in pairs:
        stored[task_id] = stored.get(task_id, 0) + 1
    duplicates = sum(count - 1 for count in stored.values())

    metrics_records = 0
    metrics_path = MetricsLog.sidecar_path(store_path)
    if os.path.exists(metrics_path):
        metrics_records = len(
            _scan_readonly(metrics_path, _extract_sidecar, "metrics log", findings)
        )

    attempts = 0
    quarantined_ids: set[str] = set()
    failures_path = FailureLog.sidecar_path(store_path)
    if os.path.exists(failures_path):
        for record in _scan_readonly(
            failures_path, _extract_sidecar, "failure log", findings
        ):
            if record.get("kind") == "attempt":
                attempts += 1
            elif record.get("kind") == "quarantine":
                quarantined_ids.add(str(record.get("task_id")))

    missing: tuple[str, ...] = ()
    unknown: tuple[str, ...] = ()
    if spec is not None:
        expected = {task.task_id() for task in spec.expand()}
        missing = tuple(sorted(
            task_id
            for task_id in expected
            if task_id not in stored and task_id not in quarantined_ids
        ))
        unknown = tuple(sorted(set(stored) - expected))
        if missing:
            findings.append(VerifyFinding(
                ERROR,
                f"{len(missing)} of {len(expected)} task(s) have neither a "
                "stored row nor a quarantine record (incomplete campaign; "
                "resume it)",
            ))
        if unknown:
            findings.append(VerifyFinding(
                WARNING,
                f"{len(unknown)} stored row(s) belong to no task of this "
                "spec (stale store or edited spec)",
            ))
        stale = sorted(quarantined_ids & set(stored))
        if stale:
            findings.append(VerifyFinding(
                WARNING,
                f"{len(stale)} quarantined task(s) also have stored rows "
                "(a later run succeeded; the quarantine records are stale)",
            ))

    return VerifyReport(
        store_path=store_path,
        rows=len(pairs),
        distinct_tasks=len(stored),
        duplicates=duplicates,
        metrics_records=metrics_records,
        failure_attempts=attempts,
        quarantined=len(quarantined_ids),
        missing=missing,
        unknown=unknown,
        findings=tuple(findings),
    )
