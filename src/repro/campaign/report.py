"""Aggregation of stored campaign rows into the paper's result shapes.

This is the read side of the engine: it never simulates, only folds the
JSON rows a campaign stored back into the objects the existing analysis
stack consumes.  *How* a grid point's rows fold is the scenario plugin's
``summarize`` callable — this module only walks the grid, fetches rows,
and dispatches, so it contains no per-scenario knowledge at all.

:class:`SweepPoint` and :class:`DownloadSummary` live in
:mod:`repro.scenarios.summaries` (plugins declare their folds there,
below the campaign layer); they are re-exported here, and by
:mod:`repro.experiments.sweeps`, for compatibility.
"""

from __future__ import annotations

from repro.campaign.spec import CampaignSpec, TaskSpec
from repro.campaign.store import ResultStore
from repro.errors import CampaignError
from repro.mac.frames import NodeId
from repro.scenarios import get_scenario, scenario_names
from repro.scenarios.summaries import (  # noqa: F401  (re-exported API)
    DownloadSummary,
    SweepPoint,
    aggregate_matrices,
    decode_matrix,
)
from repro.trace.matrix import ReceptionMatrix


def _point_tasks(spec: CampaignSpec) -> list[tuple[tuple, list[TaskSpec]]]:
    """Tasks grouped by grid point, grid order, rounds ascending."""
    groups: dict[tuple, list[TaskSpec]] = {
        labels: [] for labels, _ in spec.points()
    }
    for task in spec.expand():
        groups[task.labels].append(task)
    return list(groups.items())


def _fetch_row(store: ResultStore, task: TaskSpec) -> dict:
    task_id = task.task_id()
    if not store.has(task_id):
        raise CampaignError(
            f"campaign {task.campaign!r} is incomplete: no stored row for "
            f"point {task.labels!r} round {task.round_index} — "
            "resume the run to fill the store"
        )
    return store.get(task_id)


def _parameter(labels: tuple):
    return labels[0] if len(labels) == 1 else labels


def matrices_by_round(
    store: ResultStore, spec: CampaignSpec, labels: tuple | None = None
) -> list[dict[NodeId, ReceptionMatrix]]:
    """Stored matrices of one grid point, in round order.

    The return shape is exactly what
    :func:`repro.analysis.stats.compute_table1` and the figure curves
    consume, so a campaign store can regenerate every paper artifact.
    ``labels`` may be omitted for a gridless (single-point) campaign.
    """
    points = spec.points()
    if labels is None:
        if len(points) != 1:
            raise CampaignError(
                "campaign has several grid points; pass the labels of one"
            )
        labels = points[0][0]
    for point_labels, tasks in _point_tasks(spec):
        if point_labels != tuple(labels):
            continue
        rounds = []
        for task in tasks:
            row = _fetch_row(store, task)
            matrices = [decode_matrix(m) for m in row.get("matrices", [])]
            rounds.append({matrix.flow: matrix for matrix in matrices})
        return rounds
    raise CampaignError(f"grid point {labels!r} is not part of the campaign")


def point_summaries(store: ResultStore, spec: CampaignSpec) -> list:
    """One plugin summary per grid point, grid order.

    The summary type is the scenario plugin's ``summary_cls``
    (:class:`SweepPoint` for coverage sweeps, :class:`DownloadSummary`
    for the download study, anything a third-party plugin declares).
    """
    plugin = get_scenario(spec.scenario)
    summaries = []
    for labels, tasks in _point_tasks(spec):
        rows = [_fetch_row(store, task) for task in tasks]
        summaries.append(plugin.summarize(rows, _parameter(labels)))
    return summaries


def _scenarios_summarizing(summary_cls: type) -> str:
    """Registered scenario names whose plugins fold into *summary_cls*."""
    names = [
        name
        for name in scenario_names()
        if get_scenario(name).summary_cls is summary_cls
    ]
    return ", ".join(names) or "none registered"


def sweep_points(store: ResultStore, spec: CampaignSpec) -> list[SweepPoint]:
    """One :class:`SweepPoint` per grid point, grid order.

    Bit-identical to the legacy serial sweeps: the fold sums the same
    integer counters over the same rounds, only sourced from the store.
    Campaigns whose scenario folds into something else are refused.
    """
    plugin = get_scenario(spec.scenario)
    if plugin.summary_cls is not SweepPoint:
        raise CampaignError(
            f"{spec.scenario!r} campaigns aggregate into "
            f"{plugin.summary_cls.__name__}, not sweep points; "
            "use download_summaries / point_summaries"
        )
    return point_summaries(store, spec)


def download_summaries(
    store: ResultStore, spec: CampaignSpec
) -> list[DownloadSummary]:
    """Per-grid-point download summaries of a download-style campaign.

    Cars that never completed the file under *direct* reception are
    excluded (both columns), keeping the comparison paired — the same
    rule the serial multi-AP CLI applies.
    """
    plugin = get_scenario(spec.scenario)
    if plugin.summary_cls is not DownloadSummary:
        raise CampaignError(
            f"download_summaries requires a download-style campaign "
            f"({_scenarios_summarizing(DownloadSummary)}), "
            f"got scenario {spec.scenario!r}"
        )
    return point_summaries(store, spec)


def render_metrics_report(metrics, *, top: int = 12) -> str:
    """The ``campaign report --metrics`` section: telemetry folded across
    all executed tasks of a campaign's :class:`MetricsLog` sidecar.

    Merges every per-task snapshot (type-driven, exact — see
    :func:`repro.obs.registry.merge_snapshots`), then renders the same
    breakdown ``repro stats`` prints for a single round, prefixed with
    per-task wall-clock statistics and the slowest task.
    """
    from repro.obs import merge_snapshots
    from repro.obs.export import render_stats_report

    records = metrics.task_records()
    if not records:
        return "no per-task metrics recorded (run with --metrics)"
    elapsed = [record["elapsed_s"] for record in records]
    total_s = sum(elapsed)
    slowest = max(records, key=lambda record: record["elapsed_s"])
    lines = [
        f"telemetry over {len(records)} executed task(s): "
        f"{total_s:.2f} s total, {total_s / len(records):.2f} s/task mean, "
        f"slowest {slowest['elapsed_s']:.2f} s (task {slowest['task_id'][:12]})",
    ]
    merged = merge_snapshots([record["metrics"] for record in records])
    lines.append(render_stats_report(merged, elapsed_s=total_s, top=top))
    return "\n".join(lines)
