"""Aggregation of stored campaign rows into the paper's result shapes.

This is the read side of the engine: it never simulates, only folds the
JSON rows a campaign stored back into the objects the existing analysis
stack consumes — :class:`SweepPoint` lists for the sweep tables and
``matrices_by_round`` lists for ``compute_table1`` / the figure curves.

:class:`SweepPoint` lives here (re-exported by
:mod:`repro.experiments.sweeps` for compatibility) because aggregation is
now a store concern: the serial sweeps are thin wrappers over a campaign
run followed by these folds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign.spec import CampaignSpec, TaskSpec
from repro.campaign.store import ResultStore, decode_matrix
from repro.errors import CampaignError
from repro.mac.frames import NodeId
from repro.trace.matrix import ReceptionMatrix


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: loss fractions aggregated over cars and rounds."""

    parameter: float | str
    tx_by_ap_mean: float
    lost_before_fraction: float
    lost_after_fraction: float

    @property
    def reduction_fraction(self) -> float:
        """Relative loss reduction achieved by cooperation."""
        if self.lost_before_fraction == 0.0:
            return 0.0
        return 1.0 - self.lost_after_fraction / self.lost_before_fraction


def aggregate_matrices(
    matrices_by_round: list[dict[NodeId, ReceptionMatrix]], parameter
) -> SweepPoint:
    """Fold per-round reception matrices into one :class:`SweepPoint`."""
    tx = before = after = 0
    n = 0
    for round_matrices in matrices_by_round:
        for matrix in round_matrices.values():
            tx += matrix.tx_by_ap
            before += matrix.lost_before_coop
            after += matrix.lost_after_coop
            n += 1
    if n == 0 or tx == 0:
        raise CampaignError(
            f"sweep point {parameter!r} produced no reception data"
        )
    return SweepPoint(
        parameter=parameter,
        tx_by_ap_mean=tx / n,
        lost_before_fraction=before / tx,
        lost_after_fraction=after / tx,
    )


def _point_tasks(spec: CampaignSpec) -> list[tuple[tuple, list[TaskSpec]]]:
    """Tasks grouped by grid point, grid order, rounds ascending."""
    groups: dict[tuple, list[TaskSpec]] = {
        labels: [] for labels, _ in spec.points()
    }
    for task in spec.expand():
        groups[task.labels].append(task)
    return list(groups.items())


def _fetch_row(store: ResultStore, task: TaskSpec) -> dict:
    task_id = task.task_id()
    if not store.has(task_id):
        raise CampaignError(
            f"campaign {task.campaign!r} is incomplete: no stored row for "
            f"point {task.labels!r} round {task.round_index} — "
            "resume the run to fill the store"
        )
    return store.get(task_id)


def _parameter(labels: tuple):
    return labels[0] if len(labels) == 1 else labels


def matrices_by_round(
    store: ResultStore, spec: CampaignSpec, labels: tuple | None = None
) -> list[dict[NodeId, ReceptionMatrix]]:
    """Stored matrices of one grid point, in round order.

    The return shape is exactly what
    :func:`repro.analysis.stats.compute_table1` and the figure curves
    consume, so a campaign store can regenerate every paper artifact.
    ``labels`` may be omitted for a gridless (single-point) campaign.
    """
    points = spec.points()
    if labels is None:
        if len(points) != 1:
            raise CampaignError(
                "campaign has several grid points; pass the labels of one"
            )
        labels = points[0][0]
    for point_labels, tasks in _point_tasks(spec):
        if point_labels != tuple(labels):
            continue
        rounds = []
        for task in tasks:
            row = _fetch_row(store, task)
            matrices = [decode_matrix(m) for m in row.get("matrices", [])]
            rounds.append({matrix.flow: matrix for matrix in matrices})
        return rounds
    raise CampaignError(f"grid point {labels!r} is not part of the campaign")


def sweep_points(store: ResultStore, spec: CampaignSpec) -> list[SweepPoint]:
    """One :class:`SweepPoint` per grid point, grid order.

    Bit-identical to the legacy serial sweeps: the fold sums the same
    integer counters over the same rounds, only sourced from the store.
    """
    if spec.scenario == "multi_ap":
        raise CampaignError(
            "multi_ap campaigns aggregate downloads, not sweep points; "
            "use download_summary"
        )
    points = []
    for labels, tasks in _point_tasks(spec):
        rounds = []
        for task in tasks:
            row = _fetch_row(store, task)
            matrices = [decode_matrix(m) for m in row.get("matrices", [])]
            rounds.append({matrix.flow: matrix for matrix in matrices})
        points.append(aggregate_matrices(rounds, _parameter(labels)))
    return points


@dataclass(frozen=True)
class DownloadSummary:
    """Aggregated multi-AP file-download outcome for one grid point."""

    parameter: float | str
    aps_visited_coop_mean: float
    aps_visited_direct_mean: float
    completed_pairs: int

    @property
    def visit_reduction_fraction(self) -> float:
        """Relative reduction in AP visits achieved by cooperation."""
        if self.aps_visited_direct_mean == 0.0:
            return 0.0
        return 1.0 - self.aps_visited_coop_mean / self.aps_visited_direct_mean


def download_summaries(
    store: ResultStore, spec: CampaignSpec
) -> list[DownloadSummary]:
    """Per-grid-point download summaries of a ``multi_ap`` campaign.

    Cars that never completed the file under *direct* reception are
    excluded (both columns), keeping the comparison paired — the same
    rule the serial multi-AP CLI applies.
    """
    if spec.scenario != "multi_ap":
        raise CampaignError("download_summaries requires a multi_ap campaign")
    summaries = []
    for labels, tasks in _point_tasks(spec):
        coop = direct = 0.0
        pairs = 0
        for task in tasks:
            row = _fetch_row(store, task)
            for outcome in row.get("outcomes", []):
                if outcome["aps_visited_direct"] is None:
                    continue
                coop_visits = outcome["aps_visited_coop"]
                if coop_visits is None:
                    continue
                coop += coop_visits
                direct += outcome["aps_visited_direct"]
                pairs += 1
        if pairs == 0:
            raise CampaignError(
                f"download point {labels!r}: no car completed the file"
            )
        summaries.append(
            DownloadSummary(
                parameter=_parameter(labels),
                aps_visited_coop_mean=coop / pairs,
                aps_visited_direct_mean=direct / pairs,
                completed_pairs=pairs,
            )
        )
    return summaries
