"""Deterministic seed derivation for campaign tasks.

The whole point of the campaign engine is that execution order never
matters: a task's simulation is seeded purely from values recorded in the
task spec, so a 16-worker run, a serial run, and a resumed run all
produce bit-identical rows.

Two layers cooperate:

* The scenario builders already derive each round's simulator seed from
  ``(config seed, round_index)`` (e.g. ``seed + 7919 * (round + 1)`` for
  the urban testbed) — tasks inherit that unchanged, which is what keeps
  campaign sweeps equal to the legacy serial sweeps.
* When a spec asks for ``independent_seeds``, each grid point gets its
  own config seed derived here from the campaign master seed and the
  point's labels, so adding or removing grid points never shifts the
  random streams of the others.
"""

from __future__ import annotations

import hashlib
import json

#: Mask keeping derived seeds inside the range every stdlib and numpy
#: generator accepts (and JSON round-trips losslessly).
_SEED_BITS = 63


def derive_seed(master_seed: int, key: str) -> int:
    """A reproducible 63-bit seed from a master seed and a string key.

    Uses BLAKE2b (keyed by the master seed) so distinct keys give
    independent, well-spread seeds and the derivation is stable across
    Python versions and platforms (unlike ``hash``).
    """
    digest = hashlib.blake2b(
        key.encode(),
        digest_size=8,
        key=str(int(master_seed)).encode(),
    ).digest()
    return int.from_bytes(digest, "big") & ((1 << _SEED_BITS) - 1)


def point_seed(master_seed: int, labels: tuple) -> int:
    """The config seed of one grid point under ``independent_seeds``."""
    key = json.dumps(list(labels), sort_keys=True, separators=(",", ":"))
    return derive_seed(master_seed, "point:" + key)
