"""Campaign engine: declarative, parallel, resumable experiment execution.

The paper's every result is a pile of independent simulation rounds; this
package turns "run one experiment" into "execute a campaign of many":

* :mod:`repro.campaign.spec` — JSON-serialisable :class:`CampaignSpec`
  (scenario kind + base config + parameter grid + rounds) expanded into
  content-addressed :class:`TaskSpec` units;
* :mod:`repro.campaign.seeding` — deterministic seed derivation, so
  serial, parallel, and resumed runs are bit-identical;
* :mod:`repro.campaign.executor` — supervised multiprocessing fan-out
  (worker respawn, retries, timeouts, graceful SIGINT checkpointing)
  with a serial fallback and store-backed caching;
* :mod:`repro.campaign.resilience` — retry/backoff/timeout policy and
  the failure taxonomy;
* :mod:`repro.campaign.chaos` — deterministic fault injection for
  exercising the recovery paths in tests and CI;
* :mod:`repro.campaign.store` — append-only JSONL result store keyed by
  task content hash (resume-after-interrupt) plus an in-memory variant
  and the metrics / failure sidecar logs;
* :mod:`repro.campaign.verify` — store/sidecar integrity checking for
  CI gates (``repro campaign verify``);
* :mod:`repro.campaign.report` — folds stored rows back into the
  existing :class:`SweepPoint` / Table-1 shapes;
* :mod:`repro.campaign.progress` — tick/rate/ETA reporting.

The legacy sweeps in :mod:`repro.experiments.sweeps` and the ``repro
campaign`` CLI are both fronts over this engine.
"""

from repro.campaign.chaos import ChaosSpec
from repro.campaign.executor import CampaignRunStats, execute_task, run_campaign
from repro.campaign.progress import ProgressReporter
from repro.campaign.resilience import (
    FailureKind,
    RetryPolicy,
    TaskFailure,
    classify_exception,
)
from repro.campaign.report import (
    DownloadSummary,
    SweepPoint,
    aggregate_matrices,
    download_summaries,
    matrices_by_round,
    point_summaries,
    sweep_points,
)
from repro.campaign.seeding import derive_seed, point_seed
from repro.campaign.spec import (
    CampaignSpec,
    GridAxis,
    GridPoint,
    TaskSpec,
    axis,
    config_from_dict,
    config_to_dict,
)
from repro.campaign.store import (
    FailureLog,
    JsonlStore,
    MemoryStore,
    MetricsLog,
    ResultStore,
)

__all__ = [
    "CampaignRunStats",
    "CampaignSpec",
    "ChaosSpec",
    "DownloadSummary",
    "FailureKind",
    "FailureLog",
    "GridAxis",
    "GridPoint",
    "JsonlStore",
    "MemoryStore",
    "MetricsLog",
    "ProgressReporter",
    "ResultStore",
    "RetryPolicy",
    "SweepPoint",
    "TaskFailure",
    "TaskSpec",
    "classify_exception",
    "aggregate_matrices",
    "axis",
    "config_from_dict",
    "config_to_dict",
    "derive_seed",
    "download_summaries",
    "execute_task",
    "matrices_by_round",
    "point_seed",
    "point_summaries",
    "run_campaign",
    "sweep_points",
]
