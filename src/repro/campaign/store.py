"""On-disk and in-memory result stores, keyed by task content hash.

The JSONL store is the campaign engine's durability layer: every finished
task appends one line ``{"task_id": …, "key": …, "row": …}`` and flushes,
so an interrupted campaign loses at most the task that was mid-write.  On
reopen the loader tolerates a truncated final line (the interrupt case)
and simply re-executes that task; corruption anywhere else is an error —
silent data loss in the middle of a store would skew reported results.

The same torn-tail-tolerant posture covers the two sidecar logs that
live next to a result store: :class:`MetricsLog` (``<store>.metrics``,
per-task telemetry snapshots) and :class:`FailureLog`
(``<store>.failures``, the quarantine record of the fault-tolerant
executor — see :mod:`repro.campaign.resilience`).  All three share one
loader: a final line that fails to parse *or* decodes to the wrong
record shape (a truncated-but-valid JSON scalar, a non-dict line) is
truncated away as a torn write; the same defect mid-file is corruption
and raises.

Rows are plain JSON dicts.  The reception-matrix codec — the common
payload of coverage-style scenarios — lives with the other row shapes in
:mod:`repro.scenarios.summaries` and is re-exported here for
compatibility.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Iterator

from repro.errors import CampaignError
from repro.scenarios.summaries import (  # noqa: F401  (re-exported API)
    decode_matrix,
    encode_matrix,
)


def _scan_jsonl(
    path: str,
    describe: str,
    extract: Callable[[Any], Any],
) -> tuple[list[Any], bool]:
    """Tolerantly read a JSONL file of shape-validated records.

    ``extract`` receives each decoded line and returns the value to keep;
    it must raise ``KeyError``/``TypeError``/``ValueError`` when the
    record has the wrong shape.  A defective *final* line — whether it
    fails to decode or decodes to the wrong shape, both of which a write
    torn by an interrupt can produce — is truncated off the file so
    later appends start on a clean line.  The same defect anywhere else
    is corruption and raises :class:`CampaignError`.

    Returns ``(values, needs_newline)``: *needs_newline* is ``True`` when
    the final record is valid but its terminating newline never made it
    to disk, so the next append must write one first.
    """
    with open(path, "r", encoding="utf-8", newline="") as handle:
        lines = handle.readlines()
    values: list[Any] = []
    consumed_bytes = 0
    needs_newline = False
    for index, line in enumerate(lines):
        is_last = index == len(lines) - 1
        if line.strip():
            try:
                values.append(extract(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                if is_last:
                    # Torn final write from an interrupted run: cut it
                    # off so later appends start on a clean line; the
                    # lost record simply re-materialises on resume.
                    os.truncate(path, consumed_bytes)
                    return values, False
                raise CampaignError(
                    f"corrupt {describe} {path!r} at line {index + 1}: {exc}"
                ) from None
        consumed_bytes += len(line.encode("utf-8"))
        if is_last and not line.endswith("\n"):
            # Valid final record whose newline never made it to disk:
            # keep the record, but terminate the line before appending.
            needs_newline = True
    return values, needs_newline


class ResultStore:
    """Common interface of campaign result stores."""

    def has(self, task_id: str) -> bool:
        raise NotImplementedError

    def get(self, task_id: str) -> dict:
        raise NotImplementedError

    def put(self, task_id: str, key: str, row: dict) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __contains__(self, task_id: str) -> bool:
        return self.has(task_id)


class MemoryStore(ResultStore):
    """Ephemeral store: backs in-process sweeps and tests."""

    def __init__(self) -> None:
        self._rows: dict[str, dict] = {}

    def has(self, task_id: str) -> bool:
        return task_id in self._rows

    def get(self, task_id: str) -> dict:
        try:
            return self._rows[task_id]
        except KeyError:
            raise CampaignError(f"no stored row for task {task_id}") from None

    def put(self, task_id: str, key: str, row: dict) -> None:
        self._rows[task_id] = row

    def __len__(self) -> int:
        return len(self._rows)


def _extract_store_record(record: Any) -> tuple[str, dict]:
    """``(task_id, row)`` from one result-store line (shape-validated)."""
    task_id, row = record["task_id"], record["row"]
    if not isinstance(task_id, str) or not isinstance(row, dict):
        raise TypeError("result record fields have the wrong types")
    return task_id, row


class JsonlStore(ResultStore):
    """Append-only JSONL store: caching and resume-after-interrupt.

    Duplicate task ids are allowed on disk (a task re-run under a fresh
    store handle); the last line wins, matching append order.
    """

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        self._rows: dict[str, dict] = {}
        self._handle = None
        self._needs_newline = False
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if os.path.exists(self.path):
            self._load()

    def _load(self) -> None:
        pairs, self._needs_newline = _scan_jsonl(
            self.path, "result store", _extract_store_record
        )
        for task_id, row in pairs:
            self._rows[task_id] = row

    def has(self, task_id: str) -> bool:
        return task_id in self._rows

    def get(self, task_id: str) -> dict:
        try:
            return self._rows[task_id]
        except KeyError:
            raise CampaignError(
                f"no stored row for task {task_id} in {self.path!r}"
            ) from None

    def put(self, task_id: str, key: str, row: dict) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
            if self._needs_newline:
                self._handle.write("\n")
                self._needs_newline = False
        record = {"task_id": task_id, "key": key, "row": row}
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self._rows[task_id] = row

    def tear(self, task_id: str, key: str, row: dict) -> None:
        """Chaos hook: leave a *torn* half-record on disk, as a crash
        mid-append would, and close the handle.

        The row is deliberately **not** indexed — from this store
        handle's point of view the write was lost.  The next
        :meth:`reload` (or a fresh open) goes through the torn-tail
        recovery in the loader, truncating the fragment away.  Only the
        deterministic fault-injection harness (:mod:`repro.campaign.chaos`)
        calls this.
        """
        record = json.dumps(
            {"task_id": task_id, "key": key, "row": row}, sort_keys=True
        )
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
            if self._needs_newline:
                self._handle.write("\n")
                self._needs_newline = False
        self._handle.write(record[: max(1, len(record) // 2)])
        self._handle.flush()
        self.close()

    def reload(self) -> None:
        """Re-read the file from disk, exactly as a fresh open would.

        This is the resume-after-interrupt path made callable mid-run:
        any torn tail is truncated, the in-memory index is rebuilt from
        what actually survived on disk, and the append handle reopens on
        the next :meth:`put`.
        """
        self.close()
        self._rows.clear()
        self._needs_newline = False
        if os.path.exists(self.path):
            self._load()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[tuple[str, dict]]:
        """(task_id, row) pairs currently held."""
        return iter(self._rows.items())


def _extract_log_record(record: Any) -> dict:
    """One sidecar-log line: must be a dict with a string ``kind``."""
    if not isinstance(record, dict) or not isinstance(record.get("kind"), str):
        raise TypeError("sidecar record is not a kind-tagged object")
    return record


class _JsonlLog:
    """Shared base of the append-only JSONL sidecar logs.

    Same durability posture as :class:`JsonlStore`: append+flush per
    record, and a defective final line (interrupted run) — torn JSON
    *or* a wrong-shaped record — is truncated away on reopen rather than
    poisoning the file.  Every record is a dict carrying a ``kind`` tag.
    """

    #: Human name used in corruption error messages.
    describe = "sidecar log"

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        self._records: list[dict] = []
        self._handle = None
        self._needs_newline = False
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if os.path.exists(self.path):
            self._records, self._needs_newline = _scan_jsonl(
                self.path, self.describe, _extract_log_record
            )

    def _append(self, record: dict) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
            if self._needs_newline:
                self._handle.write("\n")
                self._needs_newline = False
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self._records.append(record)

    def records(self, kind: str | None = None) -> list[dict]:
        """Records currently held (newest last), optionally one kind."""
        if kind is None:
            return list(self._records)
        return [r for r in self._records if r.get("kind") == kind]

    def __len__(self) -> int:
        return len(self._records)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class MetricsLog(_JsonlLog):
    """Append-only JSONL sidecar of per-task metric snapshots.

    Lives next to a result store (``<store>.jsonl.metrics``) and carries
    the campaign telemetry stream: one ``{"kind": "task", ...}`` line per
    *executed* task (cached replays produce no metrics) plus one
    ``{"kind": "campaign", ...}`` summary line per ``run_campaign`` call.
    Timing data is wall-clock and therefore non-deterministic, which is
    exactly why it is kept out of the result rows — those feed the
    bit-identity pins and the science tables.
    """

    describe = "metrics log"

    @staticmethod
    def sidecar_path(store_path) -> str:
        """The metrics path belonging to a result-store path."""
        return f"{os.fspath(store_path)}.metrics"

    def put_task(
        self, task_id: str, key: str, elapsed_s: float, snapshot: dict
    ) -> None:
        """Record one executed task's metric snapshot."""
        self._append({
            "kind": "task",
            "task_id": task_id,
            "key": key,
            "elapsed_s": elapsed_s,
            "metrics": snapshot,
        })

    def put_campaign(self, summary: dict) -> None:
        """Record one ``run_campaign`` call's summary line."""
        self._append({"kind": "campaign", **summary})

    def task_records(self) -> list[dict]:
        """All per-task records currently held (newest last)."""
        return self.records("task")

    def campaign_records(self) -> list[dict]:
        """All campaign summary records currently held (newest last)."""
        return self.records("campaign")


class FailureLog(_JsonlLog):
    """Append-only JSONL sidecar quarantining campaign task failures.

    Lives next to a result store (``<store>.jsonl.failures``).  The
    fault-tolerant executor streams one ``{"kind": "attempt", ...}``
    line per failed attempt (classification, error text, traceback for
    in-task errors) and one ``{"kind": "quarantine", ...}`` line per
    task it finally gave up on — the poison-task record a resumed run or
    an operator starts debugging from.  A completed-with-failures
    campaign is therefore fully accounted: every task is either a row in
    the store or a quarantine record here.
    """

    describe = "failure log"

    @staticmethod
    def sidecar_path(store_path) -> str:
        """The failures path belonging to a result-store path."""
        return f"{os.fspath(store_path)}.failures"

    def put_attempt(
        self,
        task_id: str,
        key: str,
        attempt: int,
        failure: str,
        error: str,
        *,
        traceback: str | None = None,
    ) -> None:
        """Record one failed execution attempt."""
        record = {
            "kind": "attempt",
            "task_id": task_id,
            "key": key,
            "attempt": attempt,
            "failure": failure,
            "error": error,
        }
        if traceback is not None:
            record["traceback"] = traceback
        self._append(record)

    def put_quarantine(
        self, task_id: str, key: str, attempts: int, failure: str, error: str
    ) -> None:
        """Record a task the executor gave up on (the poison record)."""
        self._append({
            "kind": "quarantine",
            "task_id": task_id,
            "key": key,
            "attempts": attempts,
            "failure": failure,
            "error": error,
        })

    def attempt_records(self) -> list[dict]:
        """All failed-attempt records currently held (newest last)."""
        return self.records("attempt")

    def quarantine_records(self) -> list[dict]:
        """All quarantine records currently held (newest last)."""
        return self.records("quarantine")
