"""On-disk and in-memory result stores, keyed by task content hash.

The JSONL store is the campaign engine's durability layer: every finished
task appends one line ``{"task_id": …, "key": …, "row": …}`` and flushes,
so an interrupted campaign loses at most the task that was mid-write.  On
reopen the loader tolerates a truncated final line (the interrupt case)
and simply re-executes that task; corruption anywhere else is an error —
silent data loss in the middle of a store would skew reported results.

Rows are plain JSON dicts.  The reception-matrix codec — the common
payload of coverage-style scenarios — lives with the other row shapes in
:mod:`repro.scenarios.summaries` and is re-exported here for
compatibility.
"""

from __future__ import annotations

import json
import os
from typing import Iterator

from repro.errors import CampaignError
from repro.scenarios.summaries import (  # noqa: F401  (re-exported API)
    decode_matrix,
    encode_matrix,
)


class ResultStore:
    """Common interface of campaign result stores."""

    def has(self, task_id: str) -> bool:
        raise NotImplementedError

    def get(self, task_id: str) -> dict:
        raise NotImplementedError

    def put(self, task_id: str, key: str, row: dict) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __contains__(self, task_id: str) -> bool:
        return self.has(task_id)


class MemoryStore(ResultStore):
    """Ephemeral store: backs in-process sweeps and tests."""

    def __init__(self) -> None:
        self._rows: dict[str, dict] = {}

    def has(self, task_id: str) -> bool:
        return task_id in self._rows

    def get(self, task_id: str) -> dict:
        try:
            return self._rows[task_id]
        except KeyError:
            raise CampaignError(f"no stored row for task {task_id}") from None

    def put(self, task_id: str, key: str, row: dict) -> None:
        self._rows[task_id] = row

    def __len__(self) -> int:
        return len(self._rows)


class JsonlStore(ResultStore):
    """Append-only JSONL store: caching and resume-after-interrupt.

    Duplicate task ids are allowed on disk (a task re-run under a fresh
    store handle); the last line wins, matching append order.
    """

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        self._rows: dict[str, dict] = {}
        self._handle = None
        self._needs_newline = False
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if os.path.exists(self.path):
            self._load()

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8", newline="") as handle:
            lines = handle.readlines()
        consumed_bytes = 0
        for index, line in enumerate(lines):
            is_last = index == len(lines) - 1
            if line.strip():
                try:
                    record = json.loads(line)
                    task_id, row = record["task_id"], record["row"]
                except (json.JSONDecodeError, KeyError, TypeError) as exc:
                    if is_last:
                        # Torn final write from an interrupted run: cut it
                        # off so later appends start on a clean line; the
                        # task simply re-executes on resume.
                        os.truncate(self.path, consumed_bytes)
                        return
                    raise CampaignError(
                        f"corrupt result store {self.path!r} at line "
                        f"{index + 1}: {exc}"
                    ) from None
                self._rows[task_id] = row
            consumed_bytes += len(line.encode("utf-8"))
            if is_last and not line.endswith("\n"):
                # Valid final record whose newline never made it to disk:
                # keep the row, but terminate the line before appending.
                self._needs_newline = True

    def has(self, task_id: str) -> bool:
        return task_id in self._rows

    def get(self, task_id: str) -> dict:
        try:
            return self._rows[task_id]
        except KeyError:
            raise CampaignError(
                f"no stored row for task {task_id} in {self.path!r}"
            ) from None

    def put(self, task_id: str, key: str, row: dict) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
            if self._needs_newline:
                self._handle.write("\n")
                self._needs_newline = False
        record = {"task_id": task_id, "key": key, "row": row}
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self._rows[task_id] = row

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[tuple[str, dict]]:
        """(task_id, row) pairs currently held."""
        return iter(self._rows.items())


class MetricsLog:
    """Append-only JSONL sidecar of per-task metric snapshots.

    Lives next to a result store (``<store>.jsonl.metrics``) and carries
    the campaign telemetry stream: one ``{"kind": "task", ...}`` line per
    *executed* task (cached replays produce no metrics) plus one
    ``{"kind": "campaign", ...}`` summary line per ``run_campaign`` call.
    Timing data is wall-clock and therefore non-deterministic, which is
    exactly why it is kept out of the result rows — those feed the
    bit-identity pins and the science tables.

    Same durability posture as :class:`JsonlStore`: append+flush per
    record, and a torn final line (interrupted run) is truncated away on
    reopen rather than poisoning the file.
    """

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        self._records: list[dict] = []
        self._handle = None
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if os.path.exists(self.path):
            self._load()

    @staticmethod
    def sidecar_path(store_path) -> str:
        """The metrics path belonging to a result-store path."""
        return f"{os.fspath(store_path)}.metrics"

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8", newline="") as handle:
            lines = handle.readlines()
        consumed_bytes = 0
        for index, line in enumerate(lines):
            if line.strip():
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    if index == len(lines) - 1:
                        os.truncate(self.path, consumed_bytes)
                        return
                    raise CampaignError(
                        f"corrupt metrics log {self.path!r} at line "
                        f"{index + 1}: {exc}"
                    ) from None
                self._records.append(record)
            consumed_bytes += len(line.encode("utf-8"))

    def _append(self, record: dict) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self._records.append(record)

    def put_task(
        self, task_id: str, key: str, elapsed_s: float, snapshot: dict
    ) -> None:
        """Record one executed task's metric snapshot."""
        self._append({
            "kind": "task",
            "task_id": task_id,
            "key": key,
            "elapsed_s": elapsed_s,
            "metrics": snapshot,
        })

    def put_campaign(self, summary: dict) -> None:
        """Record one ``run_campaign`` call's summary line."""
        self._append({"kind": "campaign", **summary})

    def task_records(self) -> list[dict]:
        """All per-task records currently held (newest last)."""
        return [r for r in self._records if r.get("kind") == "task"]

    def campaign_records(self) -> list[dict]:
        """All campaign summary records currently held (newest last)."""
        return [r for r in self._records if r.get("kind") == "campaign"]

    def __len__(self) -> int:
        return len(self._records)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "MetricsLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
