"""Deterministic fault injection for the campaign executor.

A :class:`ChaosSpec` makes campaign workers fail *reproducibly*: every
injection decision is a pure function of ``(seed, task_id, attempt)``
through the splitmix64 mixer (:mod:`repro.radio.keyed`) — no wall-clock
RNG anywhere — so a chaos schedule replays bit-identically and the
recovery paths of :mod:`repro.campaign.executor` are exercised in tests
and CI rather than only in production.  ``repro campaign run
--chaos rate=0.3,seed=7,kinds=crash|raise`` drives it from the CLI.

Fault kinds:

* ``crash`` — the worker hard-kills itself with ``SIGKILL`` (the OOM /
  segfault shape): no cleanup, no goodbye, a torn result pipe.
* ``hang`` — the worker sleeps :attr:`ChaosSpec.hang_s` before running
  the task (the wedged-worker shape): with a per-task timeout the
  supervisor reaps it, without one the campaign merely slows down.
* ``raise`` — the worker raises :class:`~repro.errors.ChaosError`,
  classified transient and retried.
* ``torn-write`` — the task runs to completion but its result append is
  torn mid-record (the crash-during-persist shape); the store's
  torn-tail recovery truncates it and the task retries.

The headline invariant this harness exists to pin: a campaign run under
chaos yields a result store whose rows are **bit-identical** to a clean
run's, because every task's row is determined by its spec'd seed and
retries are therefore free (``tests/campaign/test_chaos.py``).

Inline (serial) execution cannot survive ``crash`` and should not stall
on ``hang`` — those two kinds are process-level faults that need a
supervisor above them — so :meth:`ChaosSpec.inline` projects a spec down
to the kinds the inline path can honestly inject (``raise`` /
``torn-write``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import CampaignError
from repro.radio.keyed import KeyedRandom, stable_hash64

#: Every fault kind the harness can inject, in canonical order.
CHAOS_KINDS: tuple[str, ...] = ("crash", "hang", "raise", "torn-write")

#: Kinds that are safe to inject in the inline (serial) execution path.
INLINE_KINDS: frozenset[str] = frozenset({"raise", "torn-write"})


@dataclass(frozen=True)
class ChaosSpec:
    """A deterministic fault-injection schedule.

    Attributes
    ----------
    rate:
        Per-``(task, attempt)`` injection probability in ``[0, 1]``.
        ``1.0`` makes every attempt fail — the poison-task shape.
    seed:
        Seed material of the decision stream; two runs with the same
        spec and seed inject exactly the same faults.
    kinds:
        Fault kinds to draw from (uniformly, keyed) when an injection
        fires.
    hang_s:
        How long a ``hang`` injection sleeps.  Finite so a campaign
        without a per-task timeout still terminates, merely slowly.
    """

    rate: float
    seed: int = 0
    kinds: tuple[str, ...] = ("crash", "raise")
    hang_s: float = 120.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise CampaignError(f"chaos rate must be in [0, 1], got {self.rate!r}")
        if not self.kinds:
            raise CampaignError("chaos spec needs at least one fault kind")
        unknown = [kind for kind in self.kinds if kind not in CHAOS_KINDS]
        if unknown:
            raise CampaignError(
                f"unknown chaos kind(s) {', '.join(unknown)}; "
                f"choose from {', '.join(CHAOS_KINDS)}"
            )
        if self.hang_s <= 0:
            raise CampaignError("chaos hang_s must be positive")

    def draw(self, task_id: str, attempt: int) -> str | None:
        """The fault to inject for ``(task_id, attempt)``, or ``None``.

        A pure function of ``(seed, task_id, attempt)``: the supervisor,
        the worker, and a replay of either all see the same decision.
        """
        rng = KeyedRandom(self.seed)
        task_hash = stable_hash64(task_id)
        if rng.uniform(task_hash, attempt, 0) >= self.rate:
            return None
        index = int(rng.uniform(task_hash, attempt, 1) * len(self.kinds))
        return self.kinds[min(index, len(self.kinds) - 1)]

    def inline(self) -> "ChaosSpec | None":
        """The projection of this spec onto inline-safe kinds.

        ``crash`` would kill the campaign process itself and ``hang``
        would stall it un-reapably, so the serial path only injects
        ``raise`` / ``torn-write``.  Returns ``None`` when nothing
        survives the projection.
        """
        kept = tuple(kind for kind in self.kinds if kind in INLINE_KINDS)
        if not kept:
            return None
        return replace(self, kinds=kept)

    # -- CLI parsing ---------------------------------------------------------

    @staticmethod
    def parse(text: str) -> "ChaosSpec":
        """Parse the CLI form ``rate=0.3,seed=7,kinds=crash|raise,hang=5``.

        ``rate`` is mandatory; everything else defaults.  ``kinds`` is a
        ``|``-separated subset of crash / hang / raise / torn-write.
        """
        fields: dict[str, object] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            name, sep, raw = part.partition("=")
            if not sep:
                raise CampaignError(
                    f"--chaos expects NAME=VALUE parts, got {part!r}"
                )
            name = name.strip()
            raw = raw.strip()
            try:
                if name == "rate":
                    fields["rate"] = float(raw)
                elif name == "seed":
                    fields["seed"] = int(raw)
                elif name == "kinds":
                    fields["kinds"] = tuple(
                        kind for kind in raw.split("|") if kind
                    )
                elif name in ("hang", "hang_s"):
                    fields["hang_s"] = float(raw)
                else:
                    raise CampaignError(
                        f"unknown --chaos field {name!r}; "
                        "expected rate / seed / kinds / hang"
                    )
            except ValueError:
                raise CampaignError(
                    f"--chaos field {name}={raw!r} is not a valid value"
                ) from None
        if "rate" not in fields:
            raise CampaignError("--chaos needs at least rate=…")
        return ChaosSpec(**fields)  # type: ignore[arg-type]
