"""Command-line interface: ``python -m repro <command>`` (or the
installed ``repro`` console script).

Commands regenerate the paper's artifacts from the shell without writing
any Python:

* ``table1 [--rounds N] [--seed S]`` — Table 1 with paper reference columns;
* ``figures [--rounds N] [--flow CAR]`` — ASCII Figures 3–8 for one flow;
* ``highway [--speeds KMH,KMH,…]`` — the drive-thru speed sweep;
* ``multi-ap [--rounds N]`` — the §6 file-download study;
* ``scenarios [--markdown|--doc]`` — the registered scenario plugins
  (``--doc`` emits the full ``docs/SCENARIOS.md`` reference);
* ``trace synth|info`` — generate a deterministic synthetic mobility
  trace / summarise any supported trace file (see
  :mod:`repro.mobility.traceio`);
* ``campaign run|report|verify`` — declarative, parallel, resumable
  campaigns over any registered scenario, its presets, or a spec file
  (see :mod:`repro.campaign` and :mod:`repro.scenarios`); ``--metrics``
  streams per-task telemetry into a JSONL sidecar and folds it back in
  reports; runs are supervised (worker respawn, ``--max-attempts``
  retries, ``--task-timeout`` reaping, quarantine into a
  ``<store>.failures`` sidecar, graceful Ctrl-C checkpointing) and
  ``--chaos`` injects deterministic faults to prove it
  (``docs/ROBUSTNESS.md``); ``verify`` integrity-checks a store with
  CI-usable exit codes;
* ``profile`` — cProfile one round or a whole campaign (aggregated),
  optionally emitting a collapsed-stacks flamegraph file;
* ``stats`` — one instrumented round, metrics breakdown with the top
  event-kernel cost centers;
* ``trace-viz`` — one instrumented round exported as Chrome
  trace-event / Perfetto JSON (see ``docs/OBSERVABILITY.md``).

Every scenario-shaped choice here — preset names, ``--scenario`` values,
report table layouts — is enumerated from the scenario plugin registry,
never hard-coded: registering a plugin is all it takes to appear.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

from repro.analysis import (
    ascii_plot,
    compute_table1,
    coop_curves,
    estimate_regions,
    optimality_gap,
    reception_curves,
    render_table1,
)
from repro.campaign import (
    CampaignSpec,
    ChaosSpec,
    FailureLog,
    JsonlStore,
    MetricsLog,
    ProgressReporter,
    RetryPolicy,
    config_from_dict,
    config_to_dict,
    point_summaries,
    run_campaign,
)
from repro.campaign.spec import GridAxis, apply_override
from repro.errors import CampaignError, ReproError
from repro.experiments import (
    PAPER_TABLE1,
    paper_testbed_config,
    run_urban_experiment,
)
from repro.experiments.highway import HighwayConfig
from repro.experiments.multi_ap import MultiApConfig, run_multi_ap_experiment
from repro.experiments.sweeps import speed_sweep
from repro.mac.frames import NodeId
from repro.scenarios import (
    all_scenarios,
    get_scenario,
    scenario_names,
    scenario_table_markdown,
)
from repro.units import kmh_to_ms, ms_to_kmh


def _cmd_table1(args: argparse.Namespace) -> int:
    result = run_urban_experiment(
        paper_testbed_config(rounds=args.rounds, seed=args.seed)
    )
    rows = compute_table1(result.matrices_by_round())
    print(render_table1(rows, paper_reference=PAPER_TABLE1))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    result = run_urban_experiment(
        paper_testbed_config(rounds=args.rounds, seed=args.seed)
    )
    cars = [NodeId(i + 1) for i in range(3)]
    flow = NodeId(args.flow)
    if flow not in cars:
        print(f"unknown car {args.flow}; choose 1-3", file=sys.stderr)
        return 2
    matrices = result.matrices_for_flow(flow)
    names = {car: f"car {car}" for car in cars}

    curves = reception_curves(matrices, cars, car_names=names)
    regions = estimate_regions(matrices, cars)
    print(f"Figure {2 + int(flow)} — P(reception), packets addressed to car {flow}")
    print(
        f"Region I: 1–{regions.region_i_end}, Region II: "
        f"–{regions.region_iii_start - 1}, Region III: –{regions.window_length}"
    )
    print(ascii_plot([curves[car].smoothed(7) for car in cars]))

    cc = coop_curves(matrices, car_name=f"car {flow}")
    print(f"\nFigure {5 + int(flow)} — after-coop vs joint "
          f"(optimality gap {optimality_gap(matrices):.4f})")
    print(ascii_plot([cc.joint.smoothed(7), cc.after_coop.smoothed(7)]))
    return 0


def _cmd_highway(args: argparse.Namespace) -> int:
    speeds_kmh = [float(v) for v in args.speeds.split(",")]
    cfg = HighwayConfig(rounds=args.rounds, seed=args.seed)
    points = speed_sweep(cfg, [kmh_to_ms(v) for v in speeds_kmh])
    print(f"{'speed':>10} {'pkts':>7} {'before':>8} {'after':>7} {'gain':>6}")
    for point in points:
        print(
            f"{ms_to_kmh(point.parameter):>7.0f} km/h {point.tx_by_ap_mean:>7.0f} "
            f"{100 * point.lost_before_fraction:>7.1f}% "
            f"{100 * point.lost_after_fraction:>6.1f}% "
            f"{100 * point.reduction_fraction:>5.0f}%"
        )
    return 0


def _cmd_multi_ap(args: argparse.Namespace) -> int:
    cfg = MultiApConfig(rounds=args.rounds, seed=args.seed)
    rounds = run_multi_ap_experiment(cfg)
    coop, direct, pairs = 0.0, 0.0, 0
    for outcomes in rounds:
        for outcome in outcomes:
            if math.isfinite(outcome.aps_visited_direct):
                coop += outcome.aps_visited_coop
                direct += outcome.aps_visited_direct
                pairs += 1
    if not pairs:
        print("no car completed the download; lengthen the road")
        return 1
    print(
        f"{cfg.file_blocks}-block file, APs every {cfg.ap_spacing_m:.0f} m: "
        f"{coop / pairs:.1f} APs with C-ARQ vs {direct / pairs:.1f} without "
        f"({100 * (1 - coop / direct):.0f}% fewer visits)"
    )
    return 0


def _campaign_presets() -> dict:
    """``--preset`` name → its plugin preset, enumerated live from the
    registry (so plugins registered after import still appear).

    Preset names share one CLI namespace across plugins; a collision is
    a registration bug and fails loudly instead of silently shadowing.
    """
    presets = {}
    for plugin in all_scenarios():
        for preset in plugin.presets:
            if preset.name in presets:
                raise CampaignError(
                    f"campaign preset {preset.name!r} is defined by two "
                    f"scenario plugins (seen again on {plugin.name!r})"
                )
            presets[preset.name] = preset
    return presets


def _default_scenario_spec(scenario: str) -> CampaignSpec:
    """A gridless campaign over a scenario's default configuration."""
    plugin = get_scenario(scenario)
    base = plugin.default_config()
    return CampaignSpec(
        name=scenario,
        scenario=scenario,
        seed=base.seed,
        rounds=base.rounds,
        base=config_to_dict(base),
    )


def _parse_set_value(text: str):
    """``--set`` values: JSON when it parses, bare string otherwise."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _label_matches(label, wanted: str) -> bool:
    """``--points`` matching: exact text, or numerically equal values."""
    if str(label) == wanted:
        return True
    try:
        return float(label) == float(wanted)
    except (TypeError, ValueError):
        return False


def _campaign_spec(args: argparse.Namespace) -> CampaignSpec:
    """Resolve and customise the spec named by
    ``--spec``/``--preset``/``--scenario``."""
    import dataclasses

    if args.spec:
        spec = CampaignSpec.load(args.spec)
    elif args.preset:
        spec = CampaignSpec.from_dict(_campaign_presets()[args.preset].build())
    elif getattr(args, "scenario", None):
        spec = _default_scenario_spec(args.scenario)
    else:
        raise CampaignError("pass --preset NAME, --scenario KIND, or --spec FILE")
    if getattr(args, "rounds", None) is not None:
        spec = dataclasses.replace(spec, rounds=args.rounds)
    if getattr(args, "seed", None) is not None:
        spec = dataclasses.replace(spec, seed=args.seed)
    if getattr(args, "points", None):
        wanted = [p.strip() for p in args.points.split(",")]
        axes = []
        for ax in spec.axes:
            kept = tuple(
                p
                for p in ax.points
                if any(_label_matches(p.label, w) for w in wanted)
            )
            if not kept:
                raise CampaignError(
                    f"--points {args.points!r} matches nothing on axis {ax.name!r}"
                )
            axes.append(GridAxis(name=ax.name, points=kept))
        spec = dataclasses.replace(spec, axes=tuple(axes))
    for override in getattr(args, "set", None) or []:
        path, sep, raw = override.partition("=")
        if not sep:
            raise CampaignError(f"--set expects PATH=VALUE, got {override!r}")
        path = path.strip()
        if path in ("seed", "rounds"):
            # Task seeds and expansion come from the spec, which would
            # silently shadow a base-config edit — steer to the real knob.
            raise CampaignError(
                f"--set {path}=… has no effect (the campaign {path} wins); "
                f"use --{path} instead"
            )
        cfg = config_from_dict(get_scenario(spec.scenario).config_cls, spec.base)
        cfg = apply_override(cfg, path, _parse_set_value(raw))
        spec = dataclasses.replace(spec, base=config_to_dict(cfg))
    return spec


def _default_store_path(spec: CampaignSpec) -> str:
    return f"campaigns/{spec.name}.jsonl"


def _print_campaign_report(spec: CampaignSpec, store: JsonlStore) -> None:
    plugin = get_scenario(spec.scenario)
    print(plugin.report_header)
    for summary in point_summaries(store, spec):
        print(plugin.report_line(summary))


def _scenario_round_config(args: argparse.Namespace):
    """``(plugin, config)`` for one round of ``--scenario`` with
    ``--seed`` / ``--set`` applied (shared by profile/stats/trace-viz)."""
    import dataclasses

    plugin = get_scenario(args.scenario)
    config = plugin.default_config()
    if args.seed is not None:
        config = dataclasses.replace(config, seed=args.seed)
    for override in args.set or []:
        path, sep, raw = override.partition("=")
        if not sep:
            raise CampaignError(f"--set expects PATH=VALUE, got {override!r}")
        config = apply_override(config, path.strip(), _parse_set_value(raw))
    return plugin, config


def _frame_name(func: tuple) -> str:
    """A flamegraph-safe frame label for a pstats function key."""
    filename, _lineno, funcname = func
    if filename in ("~", ""):
        return funcname.strip("<>").replace(";", ":").replace(" ", "_")
    import os.path

    module = os.path.splitext(os.path.basename(filename))[0]
    return f"{module}.{funcname}".replace(";", ":").replace(" ", "_")


def _write_collapsed_stacks(stats, path: str) -> int:
    """Write ``caller;callee microseconds`` lines for flamegraph tools.

    cProfile keeps caller→callee edges, not full stacks, so this is the
    edge-folded approximation: each line attributes a function's
    self-time to its direct caller (two frames deep).  The totals equal
    the profile's tottime, and ``flamegraph.pl`` / speedscope render it
    directly.
    """
    lines = []
    for func, (_cc, _nc, tt, _ct, callers) in stats.stats.items():
        name = _frame_name(func)
        if callers:
            for caller, (_ccc, _cnc, caller_tt, _cct) in callers.items():
                micros = int(round(caller_tt * 1e6))
                if micros > 0:
                    lines.append(f"{_frame_name(caller)};{name} {micros}")
        else:
            micros = int(round(tt * 1e6))
            if micros > 0:
                lines.append(f"{name} {micros}")
    with open(path, "w", encoding="utf-8") as handle:
        for line in sorted(lines):
            handle.write(line + "\n")
    return len(lines)


def _cmd_profile(args: argparse.Namespace) -> int:
    """cProfile a scenario round — or a whole campaign — and print hot spots.

    Future perf PRs should start from this data rather than guessing:
    ``repro profile --scenario multi_ap`` answers "where does a round
    actually spend its time" in a few seconds.  With ``--preset``,
    ``--spec``, ``--rounds`` or ``--points`` the profiler aggregates
    across every task of the resolved campaign (one profile, all
    rounds), and ``--flamegraph FILE`` additionally writes a collapsed-
    stacks file for flamegraph.pl / speedscope.
    """
    import cProfile
    import pstats

    from repro.campaign.executor import execute_task

    campaign_mode = bool(
        args.preset or args.spec or args.rounds is not None or args.points
    )
    profiler = cProfile.Profile()
    try:
        if campaign_mode:
            spec = _campaign_spec(args)
            tasks = spec.expand()
            for task in tasks:
                profiler.enable()
                execute_task(task)
                profiler.disable()
            print(
                f"profile: aggregated over {len(tasks)} task(s) of "
                f"campaign {spec.name!r}"
            )
        else:
            plugin, config = _scenario_round_config(args)
            context = plugin.build_round(config, args.round)
            profiler.enable()
            context.run()
            profiler.disable()
    except ReproError as exc:
        print(f"profile: {exc}", file=sys.stderr)
        return 2
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.limit)
    if args.flamegraph:
        count = _write_collapsed_stacks(stats, args.flamegraph)
        print(f"wrote {args.flamegraph}: {count} collapsed-stack edges")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run one instrumented round and print the metrics breakdown.

    The event-kernel section names the top cost centers (callback label,
    call count, cumulative wall time) — the evidence the ROADMAP's
    "break the event-kernel ceiling" work plans against.
    """
    import time as _time

    from repro import obs
    from repro.obs.export import render_stats_report

    try:
        plugin, config = _scenario_round_config(args)
        with obs.instrumented():
            start = _time.perf_counter()
            plugin.run_round(config, args.round)
            elapsed_s = _time.perf_counter() - start
            snapshot = obs.registry().snapshot()
    except ReproError as exc:
        print(f"stats: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps({"elapsed_s": elapsed_s, "metrics": snapshot},
                         sort_keys=True))
        return 0
    print(
        f"stats: one {args.scenario!r} round (round {args.round}) "
        f"in {elapsed_s:.2f} s wall"
    )
    print(render_stats_report(snapshot, elapsed_s=elapsed_s, top=args.top))
    return 0


def _cmd_trace_viz(args: argparse.Namespace) -> int:
    """Run one instrumented round and export a Perfetto trace JSON.

    The file loads directly in https://ui.perfetto.dev and shows the
    round → slot → broadcast → batch-kernel span hierarchy against wall
    clock (see docs/OBSERVABILITY.md for how to read it).
    """
    from repro import obs
    from repro.obs.export import write_chrome_trace

    try:
        plugin, config = _scenario_round_config(args)
        with obs.instrumented(capacity=args.capacity) as tracer:
            plugin.run_round(config, args.round)
            tracer.finish()
            document = write_chrome_trace(
                tracer,
                args.out,
                metadata={"scenario": args.scenario, "round": args.round},
            )
    except (ReproError, OSError) as exc:
        print(f"trace-viz: {exc}", file=sys.stderr)
        return 2
    spans = len(document["traceEvents"])
    dropped = f", {tracer.dropped} dropped" if tracer.dropped else ""
    print(
        f"wrote {args.out}: {spans} spans{dropped} (validated); "
        f"open in https://ui.perfetto.dev"
    )
    return 0


def _cmd_trace_synth(args: argparse.Namespace) -> int:
    """Generate a deterministic synthetic trace file.

    The same parameters (and seed) always produce the identical file,
    so CI and examples can regenerate their input instead of shipping
    fixtures: ``repro trace synth --out t.csv`` then ``repro campaign
    run --scenario trace --set trace_file=t.csv``.
    """
    from repro.mobility.traceio import dump_traces, synth_traces

    try:
        traces = synth_traces(
            vehicles=args.vehicles,
            duration_s=args.duration,
            tick_s=args.tick,
            seed=args.seed,
            road_length_m=args.road_length,
            mean_speed_ms=args.speed,
            entry_gap_s=args.entry_gap,
        )
        dump_traces(traces, args.out, fmt=args.format)
    except (ReproError, OSError) as exc:
        print(f"trace synth: {exc}", file=sys.stderr)
        return 2
    summary = traces.summary()
    print(
        f"wrote {args.out} ({args.format}): {summary['vehicles']} vehicles, "
        f"{summary['samples']} samples over {summary['duration_s']:.0f} s, "
        f"mean speed {summary['mean_speed_ms']:.1f} m/s"
    )
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    """Summarise a trace file (any supported format)."""
    from repro.mobility.traceio import detect_format, load_traces

    try:
        fmt = args.format if args.format != "auto" else detect_format(args.file)
        traces = load_traces(args.file, fmt=fmt, unit=args.unit)
    except ReproError as exc:
        print(f"trace info: {exc}", file=sys.stderr)
        return 2
    summary = traces.summary()
    x_min, y_min, x_max, y_max = summary["bbox_m"]
    print(f"format:     {fmt}")
    print(f"vehicles:   {summary['vehicles']}")
    print(f"samples:    {summary['samples']}")
    print(
        f"time:       [{summary['start_time_s']:.2f}, "
        f"{summary['end_time_s']:.2f}] s ({summary['duration_s']:.2f} s)"
    )
    print(
        f"bbox:       [{x_min:.1f}, {y_min:.1f}] – [{x_max:.1f}, {y_max:.1f}] m"
    )
    print(f"path total: {summary['total_path_m']:.0f} m")
    print(f"mean speed: {summary['mean_speed_ms']:.1f} m/s")
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    """List the registered scenario plugins (the extension surface)."""
    if getattr(args, "doc", False):
        from repro.scenarios.registry import scenario_reference_markdown

        print(scenario_reference_markdown())
        return 0
    if args.markdown:
        print(scenario_table_markdown())
        return 0
    for plugin in all_scenarios():
        print(f"{plugin.name}")
        print(f"  {plugin.description}")
        print(f"  modes:   {', '.join(plugin.modes)}")
        if plugin.presets:
            for preset in plugin.presets:
                print(f"  preset:  {preset.name} — {preset.description}")
        else:
            print("  preset:  (none)")
    return 0


def _campaign_retry_policy(args: argparse.Namespace) -> RetryPolicy:
    """The :class:`RetryPolicy` described by the run flags."""
    import dataclasses

    policy = RetryPolicy()
    if getattr(args, "max_attempts", None) is not None:
        policy = dataclasses.replace(policy, max_attempts=args.max_attempts)
    if getattr(args, "task_timeout", None) is not None:
        policy = dataclasses.replace(policy, timeout_s=args.task_timeout)
    return policy


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    import contextlib

    try:
        spec = _campaign_spec(args)
        if args.save_spec:
            spec.save(args.save_spec)
        chaos = ChaosSpec.parse(args.chaos) if args.chaos else None
        retry = _campaign_retry_policy(args)
        store_path = args.store or _default_store_path(spec)
        with contextlib.ExitStack() as stack:
            store = stack.enter_context(JsonlStore(store_path))
            metrics = None
            if args.metrics:
                metrics = stack.enter_context(
                    MetricsLog(MetricsLog.sidecar_path(store_path))
                )
            failures = stack.enter_context(
                FailureLog(FailureLog.sidecar_path(store_path))
            )
            progress = ProgressReporter(
                total=len(spec.expand()), name=spec.name, stream=sys.stderr
            )
            stats = run_campaign(
                spec, store, workers=args.workers, progress=progress,
                metrics=metrics, failures=failures, retry=retry, chaos=chaos,
                raise_on_failure=False,
            )
            print(progress.summary(), file=sys.stderr)
            print(
                f"campaign {spec.name!r}: {stats.executed} executed, "
                f"{stats.cached} cached on {stats.workers} worker(s) "
                f"in {stats.elapsed_s:.1f} s; store: {store_path}"
            )
            resilience = []
            if stats.retried:
                resilience.append(f"{stats.retried} retried")
            if stats.timeouts:
                resilience.append(f"{stats.timeouts} timed out")
            if stats.worker_restarts:
                resilience.append(f"{stats.worker_restarts} worker restart(s)")
            if stats.chaos_injections:
                resilience.append(f"{stats.chaos_injections} fault(s) injected")
            if stats.serial_fallback:
                resilience.append("degraded to serial")
            if resilience:
                print("resilience: " + ", ".join(resilience))
            if metrics is not None:
                print(f"metrics: {metrics.path}")
            if stats.failed:
                print(
                    f"campaign: {stats.failed} task(s) quarantined "
                    f"(see {failures.path}):",
                    file=sys.stderr,
                )
                print(stats.failure_summary(), file=sys.stderr)
            if stats.interrupted:
                print(
                    "campaign: interrupted — partial results are saved; "
                    "re-run the same command to resume",
                    file=sys.stderr,
                )
                return 130
            if stats.failed:
                # A partial store cannot fold into the per-point report
                # (and the exit code already says "look at the failures").
                return 3
            _print_campaign_report(spec, store)
    except (ReproError, OSError) as exc:
        print(f"campaign: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    try:
        spec = _campaign_spec(args)
        store_path = args.store or _default_store_path(spec)
        with JsonlStore(store_path) as store:
            _print_campaign_report(spec, store)
        if args.metrics:
            from repro.campaign.report import render_metrics_report

            with MetricsLog(MetricsLog.sidecar_path(store_path)) as metrics:
                print()
                print(render_metrics_report(metrics))
    except (ReproError, OSError) as exc:
        print(f"campaign: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_campaign_verify(args: argparse.Namespace) -> int:
    """Integrity-check a store and its sidecars (read-only, CI-gateable).

    Exit codes: 0 clean, 1 corrupt/incomplete (or warnings under
    ``--strict``), 2 usage errors — so a pipeline can gate on the store
    it just produced: ``repro campaign verify --spec s.json --store x``.
    """
    from repro.campaign.verify import verify_store

    try:
        spec = None
        if args.spec or args.preset or getattr(args, "scenario", None):
            spec = _campaign_spec(args)
        store_path = args.store or (
            _default_store_path(spec) if spec is not None else None
        )
        if store_path is None:
            raise CampaignError(
                "pass --store PATH (or a spec source to derive it from)"
            )
        report = verify_store(store_path, spec=spec)
    except (ReproError, OSError) as exc:
        print(f"campaign verify: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    if not report.ok:
        return 1
    if args.strict and report.warnings:
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: the linter is tooling, not simulation, and the
    # other subcommands should not pay for loading it.
    from repro.lint import runner

    return runner.main(args)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'A Cooperative ARQ for Delay-Tolerant "
        "Vehicular Networks' (ICDCS WS 2008)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="regenerate Table 1")
    table1.add_argument("--rounds", type=int, default=15)
    table1.add_argument("--seed", type=int, default=2008)
    table1.set_defaults(func=_cmd_table1)

    figures = sub.add_parser("figures", help="ASCII Figures 3-8 for one flow")
    figures.add_argument("--rounds", type=int, default=15)
    figures.add_argument("--seed", type=int, default=2008)
    figures.add_argument("--flow", type=int, default=1, help="destination car (1-3)")
    figures.set_defaults(func=_cmd_figures)

    highway = sub.add_parser("highway", help="drive-thru speed sweep")
    highway.add_argument("--speeds", default="40,80,120", help="km/h, comma-separated")
    highway.add_argument("--rounds", type=int, default=3)
    highway.add_argument("--seed", type=int, default=404)
    highway.set_defaults(func=_cmd_highway)

    multi_ap = sub.add_parser("multi-ap", help="file download across APs")
    multi_ap.add_argument("--rounds", type=int, default=2)
    multi_ap.add_argument("--seed", type=int, default=77)
    multi_ap.set_defaults(func=_cmd_multi_ap)

    profile = sub.add_parser(
        "profile", help="cProfile a scenario round or campaign (perf work starts here)"
    )
    profile.add_argument(
        "--scenario",
        choices=scenario_names(),
        default="urban",
        help="scenario to profile (default config, one round)",
    )
    profile.add_argument(
        "--preset",
        choices=sorted(_campaign_presets()),
        help="profile every task of this campaign preset (aggregated)",
    )
    profile.add_argument(
        "--spec", help="profile every task of this CampaignSpec JSON file"
    )
    profile.add_argument("--seed", type=int, default=None, help="override config seed")
    profile.add_argument("--round", type=int, default=0, help="round index to build")
    profile.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="campaign mode: profile this many rounds aggregated",
    )
    profile.add_argument(
        "--points",
        help="campaign mode: comma-separated grid labels to keep",
    )
    profile.add_argument(
        "--sort",
        choices=["cumulative", "tottime", "calls"],
        default="cumulative",
        help="pstats sort key",
    )
    profile.add_argument("--limit", type=int, default=20, help="rows to print")
    profile.add_argument(
        "--set",
        action="append",
        metavar="PATH=VALUE",
        help="override a config field, e.g. --set round_duration_s=10",
    )
    profile.add_argument(
        "--flamegraph",
        metavar="FILE",
        help="also write a collapsed-stacks file (flamegraph.pl / speedscope)",
    )
    profile.set_defaults(func=_cmd_profile)

    stats = sub.add_parser(
        "stats", help="run one instrumented round and print the metrics breakdown"
    )
    stats.add_argument(
        "--scenario",
        choices=scenario_names(),
        default="urban",
        help="scenario to instrument (default config, one round)",
    )
    stats.add_argument("--seed", type=int, default=None, help="override config seed")
    stats.add_argument("--round", type=int, default=0, help="round index to build")
    stats.add_argument("--top", type=int, default=12, help="cost-center rows to print")
    stats.add_argument(
        "--set",
        action="append",
        metavar="PATH=VALUE",
        help="override a config field, e.g. --set round_duration_s=10",
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit the raw metrics snapshot as JSON instead of the breakdown",
    )
    stats.set_defaults(func=_cmd_stats)

    trace_viz = sub.add_parser(
        "trace-viz",
        help="run one instrumented round and export Perfetto trace JSON",
    )
    trace_viz.add_argument(
        "--scenario",
        choices=scenario_names(),
        default="urban",
        help="scenario to trace (default config, one round)",
    )
    trace_viz.add_argument("--out", required=True, help="output trace JSON path")
    trace_viz.add_argument("--seed", type=int, default=None, help="override config seed")
    trace_viz.add_argument("--round", type=int, default=0, help="round index to build")
    trace_viz.add_argument(
        "--capacity",
        type=int,
        default=100_000,
        help="span ring-buffer size (oldest spans drop beyond this)",
    )
    trace_viz.add_argument(
        "--set",
        action="append",
        metavar="PATH=VALUE",
        help="override a config field, e.g. --set round_duration_s=10",
    )
    trace_viz.set_defaults(func=_cmd_trace_viz)

    scenarios = sub.add_parser(
        "scenarios", help="list the registered scenario plugins"
    )
    scenarios.add_argument(
        "--markdown",
        action="store_true",
        help="emit the README scenario table (same metadata)",
    )
    scenarios.add_argument(
        "--doc",
        action="store_true",
        help="emit the full scenario reference (docs/SCENARIOS.md)",
    )
    scenarios.set_defaults(func=_cmd_scenarios)

    trace = sub.add_parser(
        "trace", help="mobility-trace utilities (synthesize / inspect)"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    synth = trace_sub.add_parser(
        "synth", help="write a deterministic synthetic trace file"
    )
    synth.add_argument("--out", required=True, help="output file path")
    synth.add_argument(
        "--format",
        choices=["csv", "sumo-fcd", "ns2"],
        default="csv",
        help="output format (default csv)",
    )
    synth.add_argument("--vehicles", type=int, default=8)
    synth.add_argument("--duration", type=float, default=120.0, help="seconds")
    synth.add_argument("--tick", type=float, default=1.0, help="sample tick, s")
    synth.add_argument("--seed", type=int, default=97)
    synth.add_argument("--road-length", type=float, default=2000.0, help="metres")
    synth.add_argument("--speed", type=float, default=20.0, help="mean m/s")
    synth.add_argument(
        "--entry-gap", type=float, default=4.0, help="seconds between entries"
    )
    synth.set_defaults(func=_cmd_trace_synth)

    info = trace_sub.add_parser("info", help="summarise a trace file")
    info.add_argument("file", help="trace file (SUMO FCD XML / ns-2 setdest / CSV)")
    info.add_argument(
        "--format",
        choices=["auto", "csv", "sumo-fcd", "ns2"],
        default="auto",
        help="input format (default: sniff)",
    )
    info.add_argument("--unit", default="m", help="coordinate unit (m, km, ft, …)")
    info.set_defaults(func=_cmd_trace_info)

    campaign = sub.add_parser(
        "campaign", help="declarative, parallel, resumable campaigns"
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    def _spec_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--preset",
            choices=sorted(_campaign_presets()),
            help="a scenario plugin's campaign preset",
        )
        p.add_argument(
            "--scenario",
            choices=scenario_names(),
            help="gridless campaign over a scenario's default config",
        )
        p.add_argument("--spec", help="CampaignSpec JSON file (overrides --preset)")
        p.add_argument("--store", help="JSONL result store (default campaigns/<name>.jsonl)")
        p.add_argument("--rounds", type=int, default=None, help="override spec rounds")
        p.add_argument("--seed", type=int, default=None, help="override campaign seed")
        p.add_argument(
            "--points",
            help="comma-separated grid labels to keep (smoke runs / sharding)",
        )
        p.add_argument(
            "--set",
            action="append",
            metavar="PATH=VALUE",
            help="override a base-config field, e.g. --set round_duration_s=40",
        )

    run = campaign_sub.add_parser("run", help="execute a campaign (resumable)")
    _spec_arguments(run)
    run.add_argument("--workers", type=int, default=1, help="worker processes")
    run.add_argument("--save-spec", help="also write the resolved spec JSON here")
    run.add_argument(
        "--metrics",
        action="store_true",
        help="stream per-task metric snapshots into <store>.metrics",
    )
    run.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        help="executions per task before quarantine (default 3)",
    )
    run.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task wall-clock budget; hung workers are killed and "
        "the task retried (pool mode only)",
    )
    run.add_argument(
        "--chaos",
        metavar="SPEC",
        help="deterministic fault injection, e.g. "
        "rate=0.3,seed=7,kinds=crash|raise,hang=5 "
        "(kinds: crash, hang, raise, torn-write)",
    )
    run.set_defaults(func=_cmd_campaign_run)

    report = campaign_sub.add_parser(
        "report", help="aggregate an existing store (no simulation)"
    )
    _spec_arguments(report)
    report.add_argument(
        "--metrics",
        action="store_true",
        help="also fold and print the <store>.metrics telemetry sidecar",
    )
    report.set_defaults(func=_cmd_campaign_report)

    verify = campaign_sub.add_parser(
        "verify",
        help="integrity-check a result store and its sidecars (read-only)",
    )
    _spec_arguments(verify)
    verify.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings (torn tail, stale rows) as failures too",
    )
    verify.set_defaults(func=_cmd_campaign_verify)

    lint = sub.add_parser(
        "lint",
        help="run reprolint (AST determinism & hot-path discipline checks)",
        description=(
            "Static checks for this repo's load-bearing invariants: "
            "keyed randomness, libm-routed kernels, guarded probes, "
            "flattened hot paths, slotted layouts. See docs/LINTING.md."
        ),
    )
    lint.add_argument(
        "paths", nargs="+", help="files or directories to lint"
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--select",
        action="append",
        metavar="PREFIX",
        help="only report codes matching PREFIX (repeatable, e.g. RPL1)",
    )
    lint.add_argument(
        "--ignore",
        action="append",
        metavar="PREFIX",
        help="suppress codes matching PREFIX (repeatable)",
    )
    lint.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline file (default: tools/lint_baseline.json if present)",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from current findings (refuses growth)",
    )
    lint.add_argument(
        "--allow-growth",
        action="store_true",
        help="permit --write-baseline to add new entries",
    )
    lint.add_argument(
        "--stats",
        action="store_true",
        help="emit per-rule hit counts as an obs metrics snapshot (JSON)",
    )
    lint.add_argument(
        "-v", "--verbose", action="store_true", help="also list waived findings"
    )
    lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
