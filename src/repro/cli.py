"""Command-line interface: ``python -m repro <command>``.

Commands regenerate the paper's artifacts from the shell without writing
any Python:

* ``table1 [--rounds N] [--seed S]`` — Table 1 with paper reference columns;
* ``figures [--rounds N] [--flow CAR]`` — ASCII Figures 3–8 for one flow;
* ``highway [--speeds KMH,KMH,…]`` — the drive-thru speed sweep;
* ``multi-ap [--rounds N]`` — the §6 file-download study.
"""

from __future__ import annotations

import argparse
import math
import sys

from repro.analysis import (
    ascii_plot,
    compute_table1,
    coop_curves,
    estimate_regions,
    optimality_gap,
    reception_curves,
    render_table1,
)
from repro.experiments import (
    PAPER_TABLE1,
    paper_testbed_config,
    run_urban_experiment,
)
from repro.experiments.highway import HighwayConfig
from repro.experiments.multi_ap import MultiApConfig, run_multi_ap_experiment
from repro.experiments.sweeps import speed_sweep
from repro.mac.frames import NodeId
from repro.units import kmh_to_ms, ms_to_kmh


def _cmd_table1(args: argparse.Namespace) -> int:
    result = run_urban_experiment(
        paper_testbed_config(rounds=args.rounds, seed=args.seed)
    )
    rows = compute_table1(result.matrices_by_round())
    print(render_table1(rows, paper_reference=PAPER_TABLE1))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    result = run_urban_experiment(
        paper_testbed_config(rounds=args.rounds, seed=args.seed)
    )
    cars = [NodeId(i + 1) for i in range(3)]
    flow = NodeId(args.flow)
    if flow not in cars:
        print(f"unknown car {args.flow}; choose 1-3", file=sys.stderr)
        return 2
    matrices = result.matrices_for_flow(flow)
    names = {car: f"car {car}" for car in cars}

    curves = reception_curves(matrices, cars, car_names=names)
    regions = estimate_regions(matrices, cars)
    print(f"Figure {2 + int(flow)} — P(reception), packets addressed to car {flow}")
    print(
        f"Region I: 1–{regions.region_i_end}, Region II: "
        f"–{regions.region_iii_start - 1}, Region III: –{regions.window_length}"
    )
    print(ascii_plot([curves[car].smoothed(7) for car in cars]))

    cc = coop_curves(matrices, car_name=f"car {flow}")
    print(f"\nFigure {5 + int(flow)} — after-coop vs joint "
          f"(optimality gap {optimality_gap(matrices):.4f})")
    print(ascii_plot([cc.joint.smoothed(7), cc.after_coop.smoothed(7)]))
    return 0


def _cmd_highway(args: argparse.Namespace) -> int:
    speeds_kmh = [float(v) for v in args.speeds.split(",")]
    cfg = HighwayConfig(rounds=args.rounds, seed=args.seed)
    points = speed_sweep(cfg, [kmh_to_ms(v) for v in speeds_kmh])
    print(f"{'speed':>10} {'pkts':>7} {'before':>8} {'after':>7} {'gain':>6}")
    for point in points:
        print(
            f"{ms_to_kmh(point.parameter):>7.0f} km/h {point.tx_by_ap_mean:>7.0f} "
            f"{100 * point.lost_before_fraction:>7.1f}% "
            f"{100 * point.lost_after_fraction:>6.1f}% "
            f"{100 * point.reduction_fraction:>5.0f}%"
        )
    return 0


def _cmd_multi_ap(args: argparse.Namespace) -> int:
    cfg = MultiApConfig(rounds=args.rounds, seed=args.seed)
    rounds = run_multi_ap_experiment(cfg)
    coop, direct, pairs = 0.0, 0.0, 0
    for outcomes in rounds:
        for outcome in outcomes:
            if math.isfinite(outcome.aps_visited_direct):
                coop += outcome.aps_visited_coop
                direct += outcome.aps_visited_direct
                pairs += 1
    if not pairs:
        print("no car completed the download; lengthen the road")
        return 1
    print(
        f"{cfg.file_blocks}-block file, APs every {cfg.ap_spacing_m:.0f} m: "
        f"{coop / pairs:.1f} APs with C-ARQ vs {direct / pairs:.1f} without "
        f"({100 * (1 - coop / direct):.0f}% fewer visits)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'A Cooperative ARQ for Delay-Tolerant "
        "Vehicular Networks' (ICDCS WS 2008)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="regenerate Table 1")
    table1.add_argument("--rounds", type=int, default=15)
    table1.add_argument("--seed", type=int, default=2008)
    table1.set_defaults(func=_cmd_table1)

    figures = sub.add_parser("figures", help="ASCII Figures 3-8 for one flow")
    figures.add_argument("--rounds", type=int, default=15)
    figures.add_argument("--seed", type=int, default=2008)
    figures.add_argument("--flow", type=int, default=1, help="destination car (1-3)")
    figures.set_defaults(func=_cmd_figures)

    highway = sub.add_parser("highway", help="drive-thru speed sweep")
    highway.add_argument("--speeds", default="40,80,120", help="km/h, comma-separated")
    highway.add_argument("--rounds", type=int, default=3)
    highway.add_argument("--seed", type=int, default=404)
    highway.set_defaults(func=_cmd_highway)

    multi_ap = sub.add_parser("multi-ap", help="file download across APs")
    multi_ap.add_argument("--rounds", type=int, default=2)
    multi_ap.add_argument("--seed", type=int, default=77)
    multi_ap.set_defaults(func=_cmd_multi_ap)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
