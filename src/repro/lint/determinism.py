"""RPL1xx — determinism: no ambient randomness, clocks, or hash-order.

The reproduction's load-bearing guarantee is bit-identical replay: every
stochastic draw is keyed per ``(link, transmission)`` or spawned from the
named :class:`repro.sim.random.RandomStreams` tree, so culling, batching
and sharding cannot perturb any other draw.  One stray
``np.random.default_rng()`` in a hot module silently breaks that
contract for every scenario — and the runtime A/B pins only catch it
when the perturbed draw happens to change a pinned row.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import (
    DETERMINISM_PACKAGES,
    RNG_SEAMS,
    Finding,
    ModuleContext,
    Rule,
    canonical_call,
    import_aliases,
    in_packages,
    register,
)

#: Canonical dotted prefixes that mint ambient nondeterminism.  A name
#: matches when it equals an entry or extends it past a dot.
_NONDETERMINISTIC = (
    "random.",          # the stdlib module, any function
    "numpy.random.",    # default_rng, seed, direct distributions
    "secrets.",
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "uuid.uuid1",
    "uuid.uuid4",
    "os.urandom",
)
# Deliberately NOT listed: ``time.perf_counter``/``perf_counter_ns`` —
# wall-clock *measurement* (obs cost centers, campaign timing) never
# feeds simulation state, so it cannot perturb a realisation.


def _matches_deny(canonical: str) -> bool:
    for entry in _NONDETERMINISTIC:
        if entry.endswith("."):
            if canonical.startswith(entry):
                return True
        elif canonical == entry or canonical.startswith(entry + "."):
            return True
    return False


def _scoped(module: ModuleContext) -> bool:
    return (
        in_packages(module.logical, DETERMINISM_PACKAGES)
        and module.logical not in RNG_SEAMS
    )


@register
class AmbientRandomnessRule(Rule):
    code = "RPL101"
    name = "no ambient RNG or wall clock in deterministic modules"
    rationale = (
        "All stochastic draws must come through the keyed seams "
        "(`sim/random.py`, `radio/keyed.py`, `mobility/traceio/synth.py`): "
        "`random.*`, `np.random.*`, `time.time()`, `datetime.now()` etc. "
        "in sim/mac/net/core/radio/mobility modules break bit-identical "
        "replay in ways the runtime A/B pins can miss."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.tree is None or not _scoped(module):
            return
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = canonical_call(node, aliases)
            if canonical is not None and _matches_deny(canonical):
                yield self.finding(
                    module,
                    node,
                    f"call to {canonical}() mints ambient nondeterminism; "
                    f"draw through RandomStreams / radio.keyed instead",
                )


@register
class IdentityOrderingRule(Rule):
    code = "RPL102"
    name = "no id() inside sort or hash keys"
    rationale = (
        "`id()` is the CPython allocation address: using it in a sort key "
        "or hash makes iteration/tie-break order vary run to run, which "
        "perturbs event order and therefore every downstream draw."
    )

    _ORDERING = frozenset({"sorted", "min", "max"})

    def _has_id_call(self, node: ast.AST) -> ast.Call | None:
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Name)
                and child.func.id == "id"
            ):
                return child
        return None

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.tree is None or not _scoped(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            is_ordering = (
                isinstance(node.func, ast.Name)
                and node.func.id in self._ORDERING
            ) or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "sort"
            )
            if is_ordering:
                for keyword in node.keywords:
                    if keyword.arg == "key":
                        hit = self._has_id_call(keyword.value)
                        if hit is not None:
                            yield self.finding(
                                module,
                                hit,
                                "id() in a sort key orders by allocation "
                                "address — use a stable field instead",
                            )
            elif isinstance(node.func, ast.Name) and node.func.id == "hash":
                for arg in node.args:
                    hit = self._has_id_call(arg)
                    if hit is not None:
                        yield self.finding(
                            module,
                            hit,
                            "hash(id(…)) varies per process — hash a stable "
                            "key instead",
                        )


@register
class SetIterationRule(Rule):
    code = "RPL103"
    name = "no iteration over bare set values"
    rationale = (
        "Set iteration order depends on element hashes (and, for strings, "
        "on PYTHONHASHSEED): feeding it into event scheduling or any "
        "RNG-consuming loop makes replay order nondeterministic. Wrap the "
        "set in sorted(…) with a stable key."
    )

    def _bare_set(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.tree is None or not _scoped(module):
            return
        for node in ast.walk(module.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._bare_set(it):
                    yield self.finding(
                        module,
                        it,
                        "iterating a bare set has hash-dependent order; "
                        "wrap in sorted(…) before it feeds scheduling",
                    )
