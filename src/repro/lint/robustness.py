"""RPL6xx — robustness: failures must be handled or propagated, never
silently swallowed.

PR 9 gave campaigns a real failure taxonomy (classify → retry →
quarantine, ``docs/ROBUSTNESS.md``); the discipline only holds if errors
actually *reach* that machinery.  A ``try: … except Exception: pass``
deletes the evidence — the task looks successful, the row is missing,
and the bug surfaces as a bit-parity failure three layers up.  This
module forbids the silent-swallow shape in library code.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import Finding, ModuleContext, Rule, dotted_name, register

#: Exception names whose silent swallow hides everything, not one
#: specific anticipated condition.
_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _is_broad(type_node: ast.expr | None) -> bool:
    """Does this handler clause catch everything (or nearly)?

    ``except:``, ``except Exception:``, ``except BaseException:`` — and
    either of the broad names hiding inside a tuple clause.  A specific
    exception type (``except tokenize.TokenizeError:``) is *not* broad:
    naming the condition is exactly the documentation this rule wants.
    """
    if type_node is None:
        return True
    if isinstance(type_node, ast.Tuple):
        return any(_is_broad(el) for el in type_node.elts)
    dotted = dotted_name(type_node)
    if dotted is None:
        return False
    return dotted.split(".")[-1] in _BROAD_NAMES


def _is_silent(body: list[ast.stmt]) -> bool:
    """Is this handler body pure swallow — no handling, logging,
    re-raising, or result produced?

    ``pass``, ``...``, a bare docstring, ``continue`` and ``break``
    count as silent: they discard the exception and leave no trace.
    Anything else (assignment, call, ``raise``, ``return``) is the
    handler doing *something* with the failure, which is all the rule
    asks.
    """
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or `...`
        return False
    return True


@register
class SilentBroadExceptRule(Rule):
    code = "RPL601"
    name = "no silently swallowed broad excepts"
    rationale = (
        "except Exception: pass deletes the failure evidence the "
        "campaign resilience layer (classify/retry/quarantine) exists to "
        "collect: the task looks successful, the row is missing, and the "
        "bug resurfaces as a bit-parity mismatch far from its cause. "
        "Either catch the specific exception the code anticipates, or "
        "handle the broad one: log it, record it, re-raise it, or use "
        "contextlib.suppress(SpecificError) to make the intent explicit."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.tree is None or module.logical is None:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node.type) and _is_silent(node.body):
                caught = (
                    "bare except"
                    if node.type is None
                    else f"except {ast.unparse(node.type)}"
                )
                yield self.finding(
                    module,
                    node,
                    f"{caught} silently swallows the failure; catch the "
                    "specific exception or handle it (log/record/re-raise)",
                )
