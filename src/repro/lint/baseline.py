"""The committed findings baseline: grandfathered debt, explicitly.

``tools/lint_baseline.json`` holds findings that predate a rule and are
accepted for now.  Entries are keyed by ``(module, code, context)`` —
the *logical* module path (``mac/medium.py``) plus the enclosing
qualname — not line numbers, so unrelated edits above a grandfathered
site don't churn the file.  Each key carries a count: the baseline
absorbs at most that many matching findings, so new instances of an old
sin in the same function still fail.

The updater (``repro lint --write-baseline``) refuses to *grow* the
baseline unless ``--allow-growth`` is passed: silently baselining new
findings would defeat the gate.  Stale entries (nothing matches them
any more) fail the check too — shrink is mandatory, via a rewrite.

Policy note (ISSUE 8): ``src/repro`` itself ships with an **empty**
baseline — every finding there is either fixed or carries an inline
``lint-ok`` waiver with a written reason.  The baseline exists for
future rules landing against a large tree.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.lint.framework import Finding, logical_path

_VERSION = 1

#: ``(module-key, code, context)`` — the identity of a baselined finding.
BaselineKey = tuple[str, str, str]


class BaselineError(ReproError):
    """Malformed baseline file or refused update."""


def finding_key(finding: Finding) -> BaselineKey:
    """Stable identity for baseline matching (line numbers excluded)."""
    module = logical_path(finding.path) or finding.path
    return (module, finding.code, finding.context)


def load_baseline(path: str | Path) -> Counter[BaselineKey]:
    """Parse a baseline file into match budgets per key."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(document, dict) or document.get("version") != _VERSION:
        raise BaselineError(
            f"baseline {path}: expected {{'version': {_VERSION}, 'entries': […]}}"
        )
    budgets: Counter[BaselineKey] = Counter()
    for entry in document.get("entries", []):
        try:
            key = (entry["module"], entry["code"], entry["context"])
            count = int(entry.get("count", 1))
        except (TypeError, KeyError) as exc:
            raise BaselineError(f"baseline {path}: malformed entry {entry!r}") from exc
        budgets[key] += count
    return budgets


def apply_baseline(
    findings: list[Finding], budgets: Counter[BaselineKey]
) -> tuple[list[Finding], list[Finding], list[BaselineKey]]:
    """Split findings into ``(reported, baselined)`` plus stale keys.

    Matching consumes the per-key budget in source order; findings beyond
    the budget are reported.  Keys with budget left over are *stale* —
    the debt was paid down and the baseline must be rewritten.
    """
    remaining = Counter(budgets)
    reported: list[Finding] = []
    baselined: list[Finding] = []
    for finding in sorted(findings, key=Finding.sort_key):
        key = finding_key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            baselined.append(finding)
        else:
            reported.append(finding)
    stale = sorted(key for key, count in remaining.items() if count > 0)
    return reported, baselined, stale


def render_baseline(findings: list[Finding]) -> dict[str, Any]:
    """The JSON document that would baseline exactly *findings*."""
    counts: Counter[BaselineKey] = Counter(
        finding_key(finding) for finding in findings
    )
    entries = [
        {"module": module, "code": code, "context": context, "count": count}
        for (module, code, context), count in sorted(counts.items())
    ]
    return {"version": _VERSION, "entries": entries}


def write_baseline(
    path: str | Path,
    findings: list[Finding],
    *,
    allow_growth: bool = False,
) -> dict[str, Any]:
    """Rewrite the baseline from *findings*; refuse silent growth.

    Growth = any key whose new count exceeds its count in the existing
    file (or that is absent from it).  Shrink always succeeds.
    """
    path = Path(path)
    document = render_baseline(findings)
    if path.exists() and not allow_growth:
        old = load_baseline(path)
        new: Counter[BaselineKey] = Counter()
        for entry in document["entries"]:
            new[(entry["module"], entry["code"], entry["context"])] = entry["count"]
        grown = sorted(key for key in new if new[key] > old.get(key, 0))
        if grown:
            listed = ", ".join(
                f"{module}:{code}:{context}" for module, code, context in grown[:8]
            )
            raise BaselineError(
                f"refusing to grow the baseline silently ({len(grown)} new "
                f"key(s): {listed}{'…' if len(grown) > 8 else ''}); fix or "
                f"waive the findings, or pass --allow-growth"
            )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return document
