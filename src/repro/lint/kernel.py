"""RPL2xx — batch-kernel discipline: the last-ulp libm contract.

PR 4's vectorized channel kernel is bit-identical to the scalar
reference only because every transcendental evaluates through libm *per
element* (``repro.radio.keyed.libm_map`` and friends): NumPy 2.x
dispatches SIMD kernels for ``log``/``log10``/``exp``/``hypot``/
``power``/``cos``/``sin`` whose results differ from libm in the last
ulp, and a single direct ufunc call in a radio module silently breaks
the exhaustive/fast/batch A/B pin on exactly the hardware CI does not
run on.  IEEE-exact ufuncs (``sqrt``, ``floor``, arithmetic,
comparisons) are correctly rounded everywhere and stay allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import (
    KERNEL_PACKAGE,
    KERNEL_SEAM,
    Finding,
    ModuleContext,
    Rule,
    canonical_call,
    import_aliases,
    register,
)

#: NumPy ufuncs whose vectorized kernels are *not* correctly rounded on
#: every SIMD dispatch target (the bit-identity hazard set).
_TRANSCENDENTALS = frozenset({
    "log", "log2", "log10", "log1p",
    "exp", "exp2", "expm1",
    "hypot", "power", "float_power",
    "cos", "sin", "tan",
    "arccos", "arcsin", "arctan", "arctan2",
    "sinh", "cosh", "tanh", "arcsinh", "arccosh", "arctanh",
    "cbrt",
})


@register
class LibmRoutingRule(Rule):
    code = "RPL201"
    name = "NumPy transcendentals in radio modules must route through libm"
    rationale = (
        "`np.log/log10/exp/hypot/power/…` dispatch SIMD kernels that differ "
        "from libm in the last ulp, breaking the scalar/batch bit-identity "
        "contract (PR 4). In `radio/` modules, call "
        "`repro.radio.keyed.libm_map(math.fn, …)` (or the keyed batch "
        "helpers) instead; IEEE-exact ufuncs (`np.sqrt`, `np.floor`, "
        "arithmetic) are fine."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        logical = module.logical
        if (
            module.tree is None
            or logical is None
            or not logical.startswith(KERNEL_PACKAGE + "/")
            or logical == KERNEL_SEAM
        ):
            return
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = canonical_call(node, aliases)
            if canonical is None or not canonical.startswith("numpy."):
                continue
            fn = canonical.removeprefix("numpy.")
            if fn in _TRANSCENDENTALS:
                yield self.finding(
                    module,
                    node,
                    f"np.{fn}() is not last-ulp-identical to libm under "
                    f"SIMD dispatch; route through keyed.libm_map "
                    f"(math.{fn} per element)",
                )
