"""RPL5xx — layout: hot-package classes carry ``__slots__``.

Frames, events, buffer entries and link samples are instantiated
millions of times per campaign: a ``__dict__`` per instance costs ~96
bytes and a dict lookup per attribute access.  PR 4/PR 6 measured the
win (``LinkSample`` 152 → 56 bytes); this rule keeps every class in
sim/mac/net/core/radio slotted unless it is structurally exempt (enums,
exceptions, NamedTuples, Protocols — where slots are meaningless or
handled by the metaclass).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import (
    HOT_PACKAGES,
    Finding,
    ModuleContext,
    Rule,
    dotted_name,
    in_packages,
    register,
)

#: Base-class names (last dotted component) that make ``__slots__``
#: meaningless or metaclass-managed.
_EXEMPT_BASES = frozenset({
    "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag", "ReprEnum",
    "Exception", "BaseException",
    "NamedTuple", "TypedDict", "Protocol", "Generic", "type",
})
_EXEMPT_BASE_SUFFIXES = ("Error", "Exception", "Warning")


def _base_exempt(base: ast.expr) -> bool:
    dotted = dotted_name(base)
    if dotted is None:
        # Subscripted bases (Generic[T], Protocol[T]) and calls.
        if isinstance(base, ast.Subscript):
            return _base_exempt(base.value)
        return False
    last = dotted.split(".")[-1]
    return last in _EXEMPT_BASES or last.endswith(_EXEMPT_BASE_SUFFIXES)


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | ast.Call | None:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = dotted_name(target)
        if dotted is not None and dotted.split(".")[-1] == "dataclass":
            return dec
    return None


def _has_slots_kw(dec: ast.expr) -> bool:
    if not isinstance(dec, ast.Call):
        return False
    for kw in dec.keywords:
        if kw.arg == "slots" and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    return False


def _declares_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


@register
class SlotsRule(Rule):
    code = "RPL501"
    name = "hot-package classes declare __slots__"
    rationale = (
        "Per-instance __dict__ costs memory and a dict probe per "
        "attribute access on paths executed millions of times per round. "
        "Classes in sim/mac/net/core/radio declare __slots__ (plain "
        "classes) or slots=True (dataclasses); enums, exceptions, "
        "NamedTuples and Protocols are exempt. Base classes use "
        "__slots__ = () so subclass slots stay effective."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.tree is None or not in_packages(module.logical, HOT_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if any(_base_exempt(base) for base in node.bases):
                continue
            if any(kw.arg == "metaclass" for kw in node.keywords):
                continue
            dec = _dataclass_decorator(node)
            if dec is not None:
                if not _has_slots_kw(dec):
                    yield self.finding(
                        module,
                        node,
                        f"dataclass {node.name} in a hot package lacks "
                        f"slots=True",
                    )
            elif not _declares_slots(node):
                yield self.finding(
                    module,
                    node,
                    f"class {node.name} in a hot package lacks __slots__ "
                    f"(use __slots__ = () on pure base classes)",
                )
