"""The ``reprolint`` runner: collect files, run rules, apply waivers &
baseline, render text/JSON/stats output.

Exit-code semantics (consumed by CI):

* ``0`` — clean: no reported findings, no stale baseline entries;
* ``1`` — findings reported, or the committed baseline has stale
  entries (debt was paid down; the file must be rewritten);
* ``2`` — usage or internal error (unknown rule code, unreadable
  baseline, path does not exist).

``--select``/``--ignore`` filter *reporting* by code prefix
(``--select RPL1`` keeps the determinism family).  Every rule always
runs regardless, so waiver bookkeeping (used/stale) is independent of
the filter — a waiver does not become "unused" just because its family
was deselected this invocation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.lint import baseline as baseline_mod
from repro.lint.framework import Finding, ModuleContext, all_rules

#: Codes emitted by the framework itself rather than a registered rule.
FRAMEWORK_CODES: dict[str, str] = {
    "RPL000": "file does not parse",
    "RPL001": "malformed waiver (missing code or reason)",
    "RPL002": "stale waiver (matches no finding)",
}


@dataclass(slots=True)
class LintReport:
    """Everything one lint invocation learned."""

    files: list[str] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    waived: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list[baseline_mod.BaselineKey] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings or self.stale_baseline else 0

    def summary(self) -> str:
        parts = [
            f"{len(self.files)} file(s)",
            f"{len(self.findings)} finding(s)",
            f"{len(self.waived)} waived",
        ]
        if self.baselined:
            parts.append(f"{len(self.baselined)} baselined")
        if self.stale_baseline:
            parts.append(f"{len(self.stale_baseline)} stale baseline entr(y/ies)")
        return ", ".join(parts)


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Python files under *paths*, sorted, skipping caches and hidden dirs."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_file():
            files.add(path)
            continue
        for candidate in path.rglob("*.py"):
            if any(
                part == "__pycache__" or part.startswith(".")
                for part in candidate.parts
            ):
                continue
            files.add(candidate)
    return sorted(files)


def lint_file(path: str | Path, source: str | None = None) -> tuple[
    list[Finding], list[Finding]
]:
    """``(reported, waived)`` findings for one file (no baseline)."""
    path = Path(path)
    if source is None:
        source = path.read_text(encoding="utf-8")
    module = ModuleContext(str(path), source)

    raw: list[Finding] = []
    if module.parse_error is not None:
        raw.append(module.parse_error)
    else:
        for rule in all_rules():
            raw.extend(rule.check(module))
    raw.extend(module.malformed_waivers)

    reported: list[Finding] = []
    waived: list[Finding] = []
    for finding in raw:
        waiver = next(
            (w for w in module.waivers if w.covers(finding)), None
        )
        if waiver is not None:
            waiver.used = True
            waived.append(finding)
        else:
            reported.append(finding)

    for waiver in module.waivers:
        if not waiver.used:
            reported.append(
                Finding(
                    code="RPL002",
                    message=(
                        f"stale waiver for {', '.join(waiver.codes)} — no "
                        f"finding here any more; delete the comment"
                    ),
                    path=str(path),
                    line=waiver.line,
                    col=0,
                    context="<module>",
                )
            )
    return reported, waived


def _code_selected(
    code: str, select: Sequence[str] | None, ignore: Sequence[str] | None
) -> bool:
    if select and not any(code.startswith(prefix) for prefix in select):
        return False
    if ignore and any(code.startswith(prefix) for prefix in ignore):
        return False
    return True


def lint_paths(
    paths: Sequence[str | Path],
    *,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    baseline_path: str | Path | None = None,
) -> LintReport:
    """Run every rule over *paths* and fold in waivers plus baseline."""
    report = LintReport()
    all_reported: list[Finding] = []
    for path in collect_files(paths):
        report.files.append(str(path))
        reported, waived = lint_file(path)
        all_reported.extend(reported)
        report.waived.extend(waived)

    all_reported = [
        f
        for f in all_reported
        if _code_selected(f.code, select, ignore)
    ]

    if baseline_path is not None and Path(baseline_path).exists():
        budgets = baseline_mod.load_baseline(baseline_path)
        all_reported, baselined, stale = baseline_mod.apply_baseline(
            all_reported, budgets
        )
        report.baselined = baselined
        report.stale_baseline = stale

    report.findings = sorted(all_reported, key=Finding.sort_key)
    report.waived.sort(key=Finding.sort_key)
    return report


# -- output renderers ---------------------------------------------------------


def render_text(report: LintReport, *, verbose: bool = False) -> str:
    lines = [finding.render() for finding in report.findings]
    for module, code, context in report.stale_baseline:
        lines.append(
            f"{module}: stale baseline entry ({code} in {context}) — "
            f"rewrite with --write-baseline"
        )
    if verbose:
        lines.extend(f"waived: {f.render()}" for f in report.waived)
    lines.append(report.summary())
    return "\n".join(lines)


def render_json(report: LintReport) -> dict[str, Any]:
    def row(finding: Finding) -> dict[str, Any]:
        return {
            "code": finding.code,
            "message": finding.message,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "context": finding.context,
        }

    return {
        "files": len(report.files),
        "findings": [row(f) for f in report.findings],
        "waived": [row(f) for f in report.waived],
        "baselined": [row(f) for f in report.baselined],
        "stale_baseline": [
            {"module": m, "code": c, "context": ctx}
            for m, c, ctx in report.stale_baseline
        ],
        "exit_code": report.exit_code,
    }


def stats_snapshot(report: LintReport) -> dict[str, Any]:
    """The report as an obs metrics-registry snapshot.

    Uses a *fresh* :class:`~repro.obs.registry.MetricsRegistry` (never
    the process-wide one — lint runs must not pollute campaign metrics)
    so the output merges and renders through the exact machinery
    ``repro stats`` already uses: ``merge_snapshots`` across runs,
    ``render_stats_report`` for the human view.
    """
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    registry.counter("lint.files").inc(len(report.files))
    registry.counter("lint.findings").inc(len(report.findings))
    registry.counter("lint.waived").inc(len(report.waived))
    registry.counter("lint.baselined").inc(len(report.baselined))
    hits = registry.table("lint.rule_hits")
    for finding in report.findings + report.waived + report.baselined:
        registry.counter(f"lint.rule_hits.{finding.code}").inc()
        hits.add(finding.code, 1.0)
    return registry.snapshot()


# -- CLI entry (wired through ``repro lint``) ---------------------------------

_DEFAULT_BASELINE = Path("tools/lint_baseline.json")


def main(args: Any) -> int:
    """Entry point for the ``repro lint`` subcommand (argparse namespace)."""
    try:
        known = {rule.code for rule in all_rules()} | set(FRAMEWORK_CODES)
        for prefix in (args.select or []) + (args.ignore or []):
            if not any(code.startswith(prefix) for code in known):
                print(f"error: no rule code matches prefix {prefix!r}")
                return 2

        baseline_path: Path | None = (
            Path(args.baseline) if args.baseline else _DEFAULT_BASELINE
        )

        if args.write_baseline:
            report = lint_paths(
                args.paths, select=args.select, ignore=args.ignore
            )
            document = baseline_mod.write_baseline(
                baseline_path,
                report.findings,
                allow_growth=args.allow_growth,
            )
            print(
                f"wrote {baseline_path}: {len(document['entries'])} entr(y/ies) "
                f"covering {len(report.findings)} finding(s)"
            )
            return 0

        report = lint_paths(
            args.paths,
            select=args.select,
            ignore=args.ignore,
            baseline_path=baseline_path,
        )
    except (FileNotFoundError, baseline_mod.BaselineError) as exc:
        print(f"error: {exc}")
        return 2

    if args.stats:
        print(json.dumps(stats_snapshot(report), indent=2, sort_keys=True))
    elif args.format == "json":
        print(json.dumps(render_json(report), indent=2, sort_keys=True))
    else:
        print(render_text(report, verbose=args.verbose))
    return report.exit_code
