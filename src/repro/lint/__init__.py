"""``reprolint`` — AST-level determinism & hot-path discipline linter.

The rules encode this repo's load-bearing invariants as static checks
(see ``docs/LINTING.md`` for the catalog):

* **RPL1xx determinism** — no ambient RNG / wall clock outside the
  keyed seams, no ``id()`` ordering, no bare-set iteration;
* **RPL2xx kernel discipline** — NumPy transcendentals in ``radio/``
  route through ``keyed.libm_map`` (the last-ulp bit-identity contract);
* **RPL3xx probe discipline** — every probe-bundle dereference is
  guarded by ``is not None``; no import-time bundles;
* **RPL4xx hot-path shape** — no generator processes in ``mac``/``net``,
  no mid-accumulation rebinds (the PR 7 ``_finish_batch`` bug shape),
  no mutable defaults;
* **RPL5xx layout** — hot-package classes declare ``__slots__``;
* **RPL6xx robustness** — no silently swallowed broad excepts (failures
  must reach the campaign resilience layer, not vanish).

Importing this package registers every built-in rule.
"""

from __future__ import annotations

# Rule modules register themselves on import.
from repro.lint import (  # noqa: F401
    determinism as _determinism,
    hotpath as _hotpath,
    kernel as _kernel,
    layout as _layout,
    probes as _probes,
    robustness as _robustness,
)
from repro.lint.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    render_baseline,
    write_baseline,
)
from repro.lint.framework import (
    DETERMINISM_PACKAGES,
    HOT_PACKAGES,
    RNG_SEAMS,
    Finding,
    ModuleContext,
    Rule,
    Waiver,
    all_rules,
    get_rule,
    logical_path,
    register,
)
from repro.lint.runner import (
    FRAMEWORK_CODES,
    LintReport,
    collect_files,
    lint_file,
    lint_paths,
    render_json,
    render_text,
    stats_snapshot,
)

__all__ = [
    "BaselineError",
    "DETERMINISM_PACKAGES",
    "FRAMEWORK_CODES",
    "Finding",
    "HOT_PACKAGES",
    "LintReport",
    "ModuleContext",
    "RNG_SEAMS",
    "Rule",
    "Waiver",
    "all_rules",
    "apply_baseline",
    "collect_files",
    "get_rule",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "logical_path",
    "register",
    "render_baseline",
    "render_json",
    "render_text",
    "stats_snapshot",
    "write_baseline",
]
