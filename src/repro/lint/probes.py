"""RPL3xx — probe discipline: every hot site is one guarded attr access.

The observability contract (PR 6): probe factories
(``kernel_probes()``, ``medium_probes()``, …) return ``None`` while the
registry is disabled, so instrumented components pay one attribute load
plus an ``is None`` test per hot site — the ≤2% disabled-overhead
budget ``benchmarks/bench_obs.py`` pins.  An *unguarded* probe use
either crashes the uninstrumented path outright (``None.value``) or, if
a probe object leaks in from import time, silently records into a stale
registry.  Both rules here are purely structural:

* ``RPL301`` — a probe-bundle attribute (assigned from a ``*_probes()``
  factory) is dereferenced outside an ``is not None`` guard;
* ``RPL302`` — a probe bundle is created at import time (module or
  class scope), freezing the enabled/disabled decision before any
  campaign can flip it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import (
    Finding,
    ModuleContext,
    Rule,
    dotted_name,
    register,
)

#: A reference to a probe bundle: ``("attr", "_obs")`` for ``self._obs``,
#: ``("name", "probes")`` for a local alias.
_Ref = tuple[str, str]


def _is_probe_factory(call: ast.expr) -> bool:
    """Calls like ``medium_probes()`` / ``obs.probes.kernel_probes()``."""
    if not isinstance(call, ast.Call):
        return False
    dotted = dotted_name(call.func)
    if dotted is None:
        return False
    return dotted.split(".")[-1].endswith("_probes")


def _scoped(module: ModuleContext) -> bool:
    logical = module.logical
    return logical is not None and not logical.startswith(("obs/", "lint/"))


class _GuardWalker:
    """Walks one function body tracking which probe refs are known
    non-``None`` on each path."""

    def __init__(
        self,
        rule: Rule,
        module: ModuleContext,
        probe_attrs: frozenset[str],
    ) -> None:
        self.rule = rule
        self.module = module
        self.probe_attrs = probe_attrs
        self.local_probes: set[str] = set()
        self.findings: list[Finding] = []

    # -- reference resolution -------------------------------------------------

    def resolve(self, expr: ast.expr) -> _Ref | None:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in self.probe_attrs
        ):
            return ("attr", expr.attr)
        if isinstance(expr, ast.Name) and expr.id in self.local_probes:
            return ("name", expr.id)
        return None

    # -- guard inference ------------------------------------------------------

    def _test_guards(self, test: ast.expr) -> tuple[set[_Ref], set[_Ref]]:
        """``(non-None-if-true, non-None-if-false)`` refs for a test."""
        ref = self.resolve(test)
        if ref is not None:  # truthiness: ``if self._obs:``
            return {ref}, set()
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            true, false = self._test_guards(test.operand)
            return false, true
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            ref = self.resolve(test.left)
            if ref is not None:
                if isinstance(test.ops[0], ast.IsNot):
                    return {ref}, set()
                if isinstance(test.ops[0], ast.Is):
                    return set(), {ref}
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            true: set[_Ref] = set()
            for value in test.values:
                t, _ = self._test_guards(value)
                true |= t
            return true, set()
        return set(), set()

    # -- expression checking --------------------------------------------------

    def check_expr(self, expr: ast.AST | None, guarded: set[_Ref]) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Attribute):
            ref = self.resolve(expr.value)
            if ref is not None:
                if ref not in guarded:
                    label = (
                        f"self.{ref[1]}" if ref[0] == "attr" else ref[1]
                    )
                    self.findings.append(
                        self.rule.finding(
                            self.module,
                            expr,
                            f"probe bundle {label} dereferenced without an "
                            f"'is not None' guard (it is None while "
                            f"metrics are disabled)",
                        )
                    )
                return  # the ref itself needs no further descent
            self.check_expr(expr.value, guarded)
            return
        for child in ast.iter_child_nodes(expr):
            self.check_expr(child, guarded)

    # -- statement walking ----------------------------------------------------

    def walk(self, stmts: list[ast.stmt], guarded: set[_Ref]) -> None:
        live = set(guarded)
        for stmt in stmts:
            live = self._walk_stmt(stmt, live)

    def _terminates(self, stmts: list[ast.stmt]) -> bool:
        return bool(stmts) and isinstance(
            stmts[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
        )

    def _walk_stmt(self, stmt: ast.stmt, guarded: set[_Ref]) -> set[_Ref]:
        if isinstance(stmt, ast.If):
            self.check_expr(stmt.test, guarded)
            true, false = self._test_guards(stmt.test)
            self.walk(stmt.body, guarded | true)
            self.walk(stmt.orelse, guarded | false)
            out = set(guarded)
            if self._terminates(stmt.body):
                out |= false
            if stmt.orelse and self._terminates(stmt.orelse):
                out |= true
            return out
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            self.check_expr(value, guarded)
            target = (
                stmt.targets[0]
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                else stmt.target
                if isinstance(stmt, (ast.AnnAssign, ast.AugAssign))
                else None
            )
            if isinstance(target, ast.Name) and value is not None:
                source = self.resolve(value) if isinstance(value, ast.expr) else None
                if source is not None:
                    # ``probes = self._obs`` — alias inherits guard state.
                    self.local_probes.add(target.id)
                    alias: _Ref = ("name", target.id)
                    out = set(guarded)
                    out.discard(alias)
                    if source in guarded:
                        out.add(alias)
                    return out
                if _is_probe_factory(value):
                    self.local_probes.add(target.id)
                    out = set(guarded)
                    out.discard(("name", target.id))
                    return out
                if target.id in self.local_probes:
                    # Rebound to something else: no longer a probe ref.
                    self.local_probes.discard(target.id)
                    out = set(guarded)
                    out.discard(("name", target.id))
                    return out
            elif target is not None and not isinstance(target, ast.Name):
                self.check_expr(target, guarded)
            return guarded
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.check_expr(stmt.iter, guarded)
            self.walk(stmt.body, guarded)
            self.walk(stmt.orelse, guarded)
            return guarded
        if isinstance(stmt, ast.While):
            self.check_expr(stmt.test, guarded)
            true, _ = self._test_guards(stmt.test)
            self.walk(stmt.body, guarded | true)
            self.walk(stmt.orelse, guarded)
            return guarded
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.check_expr(item.context_expr, guarded)
            self.walk(stmt.body, guarded)
            return guarded
        if isinstance(stmt, ast.Try):
            self.walk(stmt.body, guarded)
            for handler in stmt.handlers:
                self.walk(handler.body, guarded)
            self.walk(stmt.orelse, guarded)
            self.walk(stmt.finalbody, guarded)
            return guarded
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested def: guards cannot be assumed to hold at call time.
            self.walk(stmt.body, set())
            return guarded
        if isinstance(stmt, ast.ClassDef):
            self.walk(stmt.body, set())
            return guarded
        # Expression statements, returns, asserts, raises, deletes…
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.check_expr(child, guarded)
        return guarded


@register
class UnguardedProbeRule(Rule):
    code = "RPL301"
    name = "probe bundle used without an `is None` guard"
    rationale = (
        "Probe factories return None while metrics are disabled, so every "
        "dereference of a `*_probes()` bundle must sit behind "
        "`if probes is not None:` (or an early `if probes is None: return`). "
        "An unguarded site crashes the uninstrumented path — the one every "
        "production campaign runs."
    )

    def _class_probe_attrs(self, cls: ast.ClassDef) -> frozenset[str]:
        attrs: set[str] = set()
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign) and _is_probe_factory(node.value):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
        return frozenset(attrs)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.tree is None or not _scoped(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                attrs = self._class_probe_attrs(node)
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        walker = _GuardWalker(self, module, attrs)
                        walker.walk(item.body, set())
                        yield from walker.findings
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and module.context_of(node) == "<module>":
                walker = _GuardWalker(self, module, frozenset())
                walker.walk(node.body, set())
                yield from walker.findings


@register
class ImportTimeProbeRule(Rule):
    code = "RPL302"
    name = "no probe creation at import time"
    rationale = (
        "A `*_probes()` call at module or class scope runs at import, "
        "before any campaign enables the registry: the bundle freezes to "
        "None (dead instrumentation) or, worse, binds metrics into a "
        "registry the campaign later clears. Create bundles in __init__."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.tree is None or not _scoped(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and _is_probe_factory(node):
                if not module.in_function(node):
                    yield self.finding(
                        module,
                        node,
                        "probe bundle created at import time — the "
                        "enabled/disabled decision is frozen before any "
                        "campaign can flip it; build it in __init__",
                    )
