"""The ``reprolint`` core: findings, waivers, module contexts, rule registry.

One :class:`ModuleContext` per file — the source is read and parsed
exactly once, and every registered :class:`Rule` walks the same tree.
Rules are small classes with a ``code`` (``RPL101``…), a one-line
``name`` and a ``rationale`` paragraph; the catalog in
``docs/LINTING.md`` is generated from these attributes, so rule metadata
lives in exactly one place.

Waivers are inline comments::

    self._rng = np.random.default_rng()  # repro: lint-ok RPL101 (ad-hoc fallback; builders inject seeded streams)

A waiver *must* carry a parenthesised reason — a bare ``lint-ok`` is
itself a finding (``RPL001``), and a waiver that matches no finding is a
stale one (``RPL002``).  Waivers are read from comment tokens only
(via :mod:`tokenize`), so the marker appearing inside a string literal —
fixture sources in tests, documentation snippets — never counts.

Scoping: rules apply to logical module paths *inside the repro package*
(``mac/medium.py``), derived from the last ``repro`` path component, so
the linter behaves identically whether pointed at ``src/repro``, an
installed checkout, or a test fixture tree containing a ``repro/``
directory.  Files outside any ``repro`` package (e.g. ``tests/``) only
get the framework hygiene rules.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import PurePath
from typing import ClassVar, Iterable, Iterator

#: Packages whose modules must not draw wall-clock or ambient randomness.
DETERMINISM_PACKAGES: tuple[str, ...] = (
    "sim", "mac", "net", "core", "radio", "mobility",
)

#: Packages whose per-instance layout and control-flow shape are hot.
HOT_PACKAGES: tuple[str, ...] = ("sim", "mac", "net", "core", "radio")

#: The sanctioned randomness seams: the only modules allowed to mint
#: generators / keyed streams directly.
RNG_SEAMS: tuple[str, ...] = (
    "sim/random.py",
    "radio/keyed.py",
    "mobility/traceio/synth.py",
)

#: Batch-kernel modules bound by the last-ulp libm contract (PR 4).
KERNEL_PACKAGE = "radio"
KERNEL_SEAM = "radio/keyed.py"


@dataclass(frozen=True, slots=True)
class Finding:
    """One lint finding, anchored to a source location."""

    code: str
    message: str
    path: str
    line: int
    col: int
    context: str  # enclosing ``Class.method`` qualname, or ``<module>``

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(slots=True)
class Waiver:
    """An inline ``# repro: lint-ok CODE… (reason)`` comment."""

    codes: tuple[str, ...]
    reason: str
    line: int
    used: bool = False

    def covers(self, finding: Finding) -> bool:
        """A waiver covers findings on its own line or the line below
        (so a standalone comment can sit above the offending statement)."""
        return finding.code in self.codes and finding.line in (
            self.line,
            self.line + 1,
        )


_WAIVER_RE = re.compile(
    r"repro:\s*lint-ok\b(?P<codes>[^(]*)(?:\((?P<reason>.*)\))?\s*$"
)
_CODE_RE = re.compile(r"^RPL\d{3}$")


def _parse_waiver_comment(
    text: str, line: int, path: str
) -> "Waiver | Finding | None":
    """A :class:`Waiver`, a malformed-waiver :class:`Finding`, or ``None``
    when the comment is not a waiver marker at all."""
    match = _WAIVER_RE.search(text)
    if match is None:
        return None
    codes = tuple(
        part for part in re.split(r"[,\s]+", match.group("codes").strip()) if part
    )
    reason = (match.group("reason") or "").strip()
    bad = [code for code in codes if not _CODE_RE.match(code)]
    if not codes or bad or not reason:
        detail = (
            f"unknown code(s) {', '.join(bad)}" if bad
            else "missing rule code(s)" if not codes
            else "missing (reason)"
        )
        return Finding(
            code="RPL001",
            message=(
                f"malformed waiver: {detail}; write "
                f"'# repro: lint-ok RPL101 (why this site is exempt)'"
            ),
            path=path,
            line=line,
            col=0,
            context="<module>",
        )
    return Waiver(codes=codes, reason=reason, line=line)


def logical_path(path: str) -> str | None:
    """Path relative to the innermost ``repro`` package, as posix.

    ``src/repro/mac/medium.py`` → ``mac/medium.py``;
    files outside any ``repro`` directory → ``None``.
    """
    parts = PurePath(path).parts
    for i in range(len(parts) - 2, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i + 1:])
    return None


def in_packages(logical: str | None, packages: Iterable[str]) -> bool:
    """Is *logical* a module inside one of *packages*?"""
    if logical is None:
        return False
    head = logical.split("/", 1)[0]
    return head in tuple(packages)


class ModuleContext:
    """One parsed source file, shared by every rule.

    ``tree`` is ``None`` when the file does not parse —
    the runner reports that as an ``RPL000`` finding.
    """

    __slots__ = (
        "path", "logical", "source", "tree", "waivers",
        "malformed_waivers", "parse_error", "_contexts", "_in_function",
    )

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.logical = logical_path(path)
        self.source = source
        self.waivers: list[Waiver] = []
        self.malformed_waivers: list[Finding] = []
        self.parse_error: Finding | None = None
        self._contexts: dict[int, str] = {}
        self._in_function: set[int] = set()
        try:
            self.tree: ast.Module | None = ast.parse(source)
        except SyntaxError as exc:
            self.tree = None
            self.parse_error = Finding(
                code="RPL000",
                message=f"file does not parse: {exc.msg}",
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                context="<module>",
            )
            return
        self._scan_waivers()
        self._map_contexts()

    def _scan_waivers(self) -> None:
        """Collect waivers from COMMENT tokens (never string literals)."""
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                parsed = _parse_waiver_comment(
                    token.string, token.start[0], self.path
                )
                if isinstance(parsed, Waiver):
                    self.waivers.append(parsed)
                elif isinstance(parsed, Finding):
                    # Malformed waivers surface through the runner (RPL001).
                    self.malformed_waivers.append(parsed)
        except tokenize.TokenizeError:
            pass

    def _map_contexts(self) -> None:
        """Record the enclosing qualname for every node (one walk)."""
        assert self.tree is not None

        def visit(
            node: ast.AST, stack: tuple[str, ...], in_function: bool
        ) -> None:
            for child in ast.iter_child_nodes(node):
                self._contexts[id(child)] = ".".join(stack) or "<module>"
                if in_function:
                    self._in_function.add(id(child))
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    visit(child, stack + (child.name,), True)
                elif isinstance(child, ast.ClassDef):
                    visit(child, stack + (child.name,), in_function)
                else:
                    visit(child, stack, in_function)

        visit(self.tree, (), False)

    def context_of(self, node: ast.AST) -> str:
        """Enclosing ``Class.method`` qualname for *node* (``<module>``
        at top level)."""
        return self._contexts.get(id(node), "<module>")

    def in_function(self, node: ast.AST) -> bool:
        """Is *node* lexically inside any function body?"""
        return id(node) in self._in_function


class Rule:
    """Base class: one code, one invariant, one ``check`` pass."""

    code: ClassVar[str] = ""
    name: ClassVar[str] = ""
    rationale: ClassVar[str] = ""

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            code=self.code,
            message=message,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            context=module.context_of(node),
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and index the rule by its code."""
    if not _CODE_RE.match(cls.code):
        raise ValueError(f"rule {cls.__name__} has invalid code {cls.code!r}")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls()
    return cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by code (import side effect:
    importing :mod:`repro.lint` registers the built-in rule modules)."""
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def get_rule(code: str) -> Rule:
    return _REGISTRY[code]


# -- shared AST helpers -------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map of local names to the canonical dotted path they import.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from datetime import datetime`` → ``{"datetime": "datetime.datetime"}``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname:
                    aliases[name.asname] = name.name
                else:
                    head = name.name.split(".", 1)[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for name in node.names:
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def canonical_call(node: ast.Call, aliases: dict[str, str]) -> str | None:
    """The canonical dotted path of a call through the import map.

    ``np.random.default_rng(…)`` → ``numpy.random.default_rng`` when
    ``np`` aliases numpy; calls on local objects resolve to ``None``.
    """
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    canonical = aliases.get(head)
    if canonical is None:
        return None
    return f"{canonical}.{rest}" if rest else canonical


def block_terminates(stmts: list[ast.stmt]) -> bool:
    """Does the block unconditionally leave the enclosing suite?"""
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )
