"""RPL4xx — hot-path shape: flattened callbacks, honest accumulators.

PR 7 flattened the event kernel's hot control flow: generator-based
processes cost a frame resume per event, so CSMA contention and AP flow
senders became self-rescheduling callbacks, and protocol delivery became
one pooled dispatch per broadcast.  These rules keep that shape from
regressing — and encode the exact bug shape that refactor shipped and
the runtime pins missed: ``_finish_batch`` rebinding its ``delivered``
accumulator with the FER-outcome list, so every dense-broadcast delivery
was appended to a list nobody read.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.lint.framework import (
    HOT_PACKAGES,
    Finding,
    ModuleContext,
    Rule,
    in_packages,
    register,
)


@register
class GeneratorProcessRule(Rule):
    code = "RPL401"
    name = "no new generator-based processes in mac/ or net/"
    rationale = (
        "PR 7 flattened MAC contention and AP flow senders into "
        "self-rescheduling callbacks: a generator process costs a frame "
        "resume per event and hides the reschedule from the profiler. New "
        "hot-path logic in mac/ and net/ must be written as callbacks; "
        "generators remain fine in core/ protocol orchestration."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.tree is None or not in_packages(module.logical, ("mac", "net")):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for child in ast.walk(node):
                if isinstance(child, (ast.Yield, ast.YieldFrom)):
                    # Anchor on the def so one finding per generator,
                    # and so the waiver sits on the signature.
                    yield self.finding(
                        module,
                        node,
                        f"{node.name}() is a generator-based process; "
                        f"mac/ and net/ hot paths are flattened "
                        f"self-rescheduling callbacks (PR 7)",
                    )
                    break


@dataclass(slots=True)
class _Accumulation:
    line: int
    loops: tuple[int, ...]  # id() stack of enclosing loops


@dataclass(slots=True)
class _Rebind:
    node: ast.Assign | ast.AnnAssign
    name: str
    line: int
    loops: tuple[int, ...]


_ACCUMULATE_METHODS = frozenset(
    {"append", "extend", "add", "update", "insert", "appendleft", "setdefault"}
)


def _is_empty_container(expr: ast.expr | None) -> bool:
    """``[]`` / ``{}`` / ``set()`` / ``list()`` …: the legitimate
    accumulator (re-)initialisation shapes."""
    if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
        return not expr.elts
    if isinstance(expr, ast.Dict):
        return not expr.keys
    if isinstance(expr, ast.Call):
        return (
            isinstance(expr.func, ast.Name)
            and expr.func.id in ("list", "dict", "set", "deque", "defaultdict")
            and not expr.args
            and not expr.keywords
        )
    return False


@register
class AccumulatorShadowRule(Rule):
    code = "RPL402"
    name = "accumulator rebound mid-accumulation"
    rationale = (
        "The PR 7 `_finish_batch` bug shape: a name that is appended to "
        "(an accumulator, often a caller-owned parameter) is rebound to a "
        "computed value partway through the function, so later appends land "
        "in an object nobody reads. Record-comparison pins cannot see this "
        "— the rows are 'valid', just silently empty."
    )

    def _scan_function(
        self, module: ModuleContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        params = {
            arg.arg
            for arg in (
                func.args.posonlyargs + func.args.args + func.args.kwonlyargs
            )
        }
        accumulations: dict[str, list[_Accumulation]] = {}
        rebinds: list[_Rebind] = []

        def scan(node: ast.AST, loops: tuple[int, ...]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue  # nested scopes have their own accumulators
                if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                    scan(child, loops + (id(child),))
                    continue
                if isinstance(child, ast.Call):
                    fn = child.func
                    if (
                        isinstance(fn, ast.Attribute)
                        and fn.attr in _ACCUMULATE_METHODS
                        and isinstance(fn.value, ast.Name)
                    ):
                        accumulations.setdefault(fn.value.id, []).append(
                            _Accumulation(line=child.lineno, loops=loops)
                        )
                if isinstance(child, ast.AugAssign) and isinstance(
                    child.target, ast.Name
                ):
                    accumulations.setdefault(child.target.id, []).append(
                        _Accumulation(line=child.lineno, loops=loops)
                    )
                if isinstance(child, ast.Assign):
                    for target in child.targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                        ):
                            accumulations.setdefault(
                                target.value.id, []
                            ).append(
                                _Accumulation(line=child.lineno, loops=loops)
                            )
                    if len(child.targets) == 1 and isinstance(
                        child.targets[0], ast.Name
                    ):
                        rebinds.append(
                            _Rebind(
                                child, child.targets[0].id, child.lineno, loops
                            )
                        )
                if isinstance(child, ast.AnnAssign) and isinstance(
                    child.target, ast.Name
                ):
                    if child.value is not None:
                        rebinds.append(
                            _Rebind(
                                child, child.target.id, child.lineno, loops
                            )
                        )
                scan(child, loops)

        scan(func, ())

        for rebind in rebinds:
            value = rebind.node.value
            if value is None or _is_empty_container(value):
                continue
            if isinstance(value, ast.Constant) or (
                isinstance(value, ast.UnaryOp)
                and isinstance(value.operand, ast.Constant)
            ):
                continue  # counter reset (``stagnant = 0``) is idiomatic
            rhs_names = {
                n.id for n in ast.walk(value) if isinstance(n, ast.Name)
            }
            if rebind.name in rhs_names:
                continue  # ``parts = sorted(parts)`` keeps the accumulator
            accums = accumulations.get(rebind.name, [])
            if not accums:
                continue
            # The name must already be an accumulator when the rebind
            # runs: a caller-owned parameter, or accumulated above.
            prior = rebind.name in params or any(
                a.line < rebind.line for a in accums
            )
            if not prior:
                continue
            later = any(a.line > rebind.line for a in accums)
            same_loop = bool(rebind.loops) and any(
                a.loops and a.loops[-1] == rebind.loops[-1] for a in accums
            )
            if later or same_loop:
                origin = (
                    "the caller's accumulator parameter"
                    if rebind.name in params
                    else "its own accumulator"
                )
                yield self.finding(
                    module,
                    rebind.node,
                    f"{rebind.name!r} is accumulated into elsewhere in this "
                    f"function but rebound here to a computed value — "
                    f"later appends target a severed object "
                    f"(the PR 7 _finish_batch bug shape; {origin})",
                )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.tree is None or not in_packages(module.logical, HOT_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._scan_function(module, node)


@register
class MutableDefaultRule(Rule):
    code = "RPL403"
    name = "no mutable default arguments in hot packages"
    rationale = (
        "A mutable default ([]/{}) on a simulator-registered callback is "
        "shared across every invocation and every round in a worker "
        "process — state leaks between rounds and the paired-seed "
        "campaign arms silently diverge."
    )

    _FACTORY_NAMES = frozenset({"list", "dict", "set", "bytearray"})

    def _mutable(self, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(expr, (ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in self._FACTORY_NAMES
        )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.tree is None or not in_packages(module.logical, HOT_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults: list[ast.expr] = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults if d is not None)
            for default in defaults:
                if self._mutable(default):
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument on {node.name}() is "
                        f"shared across calls and rounds; default to None "
                        f"and construct inside",
                    )
