"""Epidemic-exchange baseline for the dark area.

Classic epidemic routing [6] applied to the platoon's recovery problem:
every node buffers *everything* it overhears (all flows, not just
cooperation partners), periodically advertises its holdings with a
summary vector, and on receiving a peer's summary floods the packets the
peer lacks.

Delivery-wise this also converges to the joint reception set; the point
of the baseline is *overhead*: C-ARQ's destination-driven REQUESTs only
move packets the destination is missing, while epidemic anti-entropy
pushes every difference in both directions.  The
``overhead-epidemic`` benchmark measures the ratio.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.core.state import FlowReceptionState
from repro.errors import ConfigurationError
from repro.mac.frames import (
    BROADCAST,
    CoopDataFrame,
    DataFrame,
    Frame,
    NodeId,
    SummaryFrame,
)
from repro.mac.medium import Medium, RxInfo
from repro.mac.timing import frame_airtime
from repro.mobility.base import MobilityModel
from repro.net.buffer import BufferEntry, PacketBuffer
from repro.net.node import Node
from repro.radio.phy import RadioConfig
from repro.sim import Simulator


class EpidemicVehicleNode(Node):
    """A car running summary-vector anti-entropy in the dark area.

    Parameters
    ----------
    summary_period_s:
        Interval between summary broadcasts while out of coverage.
    coverage_timeout_s:
        AP silence that switches the node into exchange mode (same
        meaning as the C-ARQ coverage timeout, for a fair comparison).
    max_summary_entries:
        Cap on (flow, seq) pairs per summary frame.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        node_id: NodeId,
        mobility: MobilityModel,
        radio: RadioConfig,
        rng: np.random.Generator,
        ap_id: NodeId,
        *,
        summary_period_s: float = 1.0,
        coverage_timeout_s: float = 5.0,
        max_summary_entries: int = 512,
        name: str = "",
    ) -> None:
        super().__init__(sim, medium, node_id, mobility, radio, rng, name=name)
        if summary_period_s <= 0.0:
            raise ConfigurationError("summary period must be positive")
        if coverage_timeout_s <= 0.0:
            raise ConfigurationError("coverage timeout must be positive")
        self.ap_id = ap_id
        self.state = FlowReceptionState()
        self.buffer = PacketBuffer()
        self.summary_period_s = summary_period_s
        self.coverage_timeout_s = coverage_timeout_s
        self.max_summary_entries = max_summary_entries
        self._last_ap_time: float | None = None
        self.summaries_sent = 0
        self.payloads_forwarded = 0
        self.iface.add_receive_callback(self._on_frame)

    def start(self) -> None:
        """Launch the anti-entropy beacon process."""
        self.sim.process(self._summary_loop(), name=f"{self.name}.summary")

    # -- helpers --------------------------------------------------------------

    def holdings(self) -> set[tuple[NodeId, int]]:
        """All (flow, seq) pairs this node can offer."""
        held = {
            (entry.flow_dst, entry.seq) for entry in self.buffer.entries()
        }
        held |= {(self.node_id, seq) for seq in self.state.received}
        held |= {(self.node_id, seq) for seq in self.state.recovered}
        return held

    def in_dark_area(self) -> bool:
        """Out of AP coverage (after at least one association)."""
        return (
            self._last_ap_time is not None
            and self.sim.now - self._last_ap_time > self.coverage_timeout_s
        )

    # -- frame handling -----------------------------------------------------------

    def _on_frame(self, frame: Frame, info: RxInfo) -> None:
        now = self.sim.now
        if isinstance(frame, DataFrame) and frame.src == self.ap_id:
            self._last_ap_time = now
            if frame.flow_dst == self.node_id:
                self.state.record_direct(frame.seq, now)
            else:
                # Epidemic nodes buffer *everything* — no cooperator gating.
                self.buffer.add(
                    BufferEntry(frame.flow_dst, frame.seq, now, frame.size_bytes)
                )
        elif isinstance(frame, CoopDataFrame):
            if frame.flow_dst == self.node_id:
                self.state.record_recovered(frame.seq, now)
            else:
                self.buffer.add(
                    BufferEntry(frame.flow_dst, frame.seq, now, frame.size_bytes)
                )
        elif isinstance(frame, SummaryFrame):
            self._answer_summary(frame)

    def _answer_summary(self, frame: SummaryFrame) -> None:
        peer_has = set(frame.holdings)
        to_send = sorted(self.holdings() - peer_has)
        if not to_send:
            return
        self.sim.process(
            self._flood(NodeId(frame.src), to_send), name=f"{self.name}.flood"
        )

    def _flood(
        self, peer: NodeId, items: list[tuple[NodeId, int]]
    ) -> typing.Generator[float, None, None]:
        for flow, seq in items:
            size = self._size_of(flow, seq)
            if size is None:
                continue
            out = CoopDataFrame(
                src=self.node_id,
                dst=peer,
                size_bytes=size,
                flow_dst=flow,
                seq=seq,
                relayer=self.node_id,
            )
            self.iface.send(out)
            self.payloads_forwarded += 1
            yield frame_airtime(size, self.iface.config.rate) + 0.002

    def _size_of(self, flow: NodeId, seq: int) -> int | None:
        entry = self.buffer.get(flow, seq)
        if entry is not None:
            return entry.size_bytes
        if flow == self.node_id and self.state.has(seq):
            return DataFrame.size_for_payload(1000)
        return None

    # -- beacon ----------------------------------------------------------------------

    def _summary_loop(self) -> typing.Generator[float, None, None]:
        while True:
            yield self.summary_period_s
            if not self.in_dark_area():
                continue
            holdings = sorted(self.holdings())[: self.max_summary_entries]
            frame = SummaryFrame(
                src=self.node_id,
                dst=BROADCAST,
                size_bytes=SummaryFrame.size_for(len(holdings)),
                holdings=tuple(holdings),
            )
            self.iface.send(frame)
            self.summaries_sent += 1
