"""Comparison protocols.

* :class:`PassiveVehicleNode` — reception only, no cooperation (the
  "before coop" column as a standalone system);
* :class:`ArqVehicleNode` / :class:`ArqAccessPoint` — classic in-coverage
  ARQ: cars NACK missing packets while in range and the AP retransmits,
  spending coverage airtime (what the paper deliberately avoids, §3.2);
* :class:`EpidemicVehicleNode` — epidemic-style anti-entropy exchange in
  the dark area [6]: summary vectors + flooding of everything a peer
  lacks, the overhead reference point for C-ARQ's targeted REQUESTs
  (§3.3 discussion).
"""

from repro.baselines.nocoop import PassiveVehicleNode
from repro.baselines.arq import ArqAccessPoint, ArqVehicleNode
from repro.baselines.epidemic import EpidemicVehicleNode

__all__ = [
    "ArqAccessPoint",
    "ArqVehicleNode",
    "EpidemicVehicleNode",
    "PassiveVehicleNode",
]
