"""The no-cooperation receiver: what a lone car gets from the AP."""

from __future__ import annotations

import numpy as np

from repro.core.state import FlowReceptionState
from repro.mac.frames import DataFrame, Frame, NodeId
from repro.mac.medium import Medium, RxInfo
from repro.mobility.base import MobilityModel
from repro.net.node import Node
from repro.radio.phy import RadioConfig
from repro.sim import Simulator


class PassiveVehicleNode(Node):
    """A car that records its own flow and does nothing else.

    Shares :class:`~repro.core.state.FlowReceptionState` with the C-ARQ
    vehicle so analysis code treats both uniformly (``recovered`` simply
    stays empty).
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        node_id: NodeId,
        mobility: MobilityModel,
        radio: RadioConfig,
        rng: np.random.Generator,
        ap_ids: NodeId | list[NodeId],
        name: str = "",
    ) -> None:
        super().__init__(sim, medium, node_id, mobility, radio, rng, name=name)
        if isinstance(ap_ids, int):
            self.ap_ids = frozenset({NodeId(ap_ids)})
        else:
            self.ap_ids = frozenset(ap_ids)
        self.state = FlowReceptionState()
        self.iface.add_receive_callback(self._on_frame)

    def start(self) -> None:
        """No processes to launch; present for interface parity."""

    def _on_frame(self, frame: Frame, info: RxInfo) -> None:
        if not isinstance(frame, DataFrame):
            return
        if frame.src not in self.ap_ids:
            return
        if frame.flow_dst == self.node_id:
            self.state.record_direct(frame.seq, self.sim.now)
