"""In-coverage ARQ baseline: NACK feedback + AP retransmissions.

The paper's §3.2 argues that spending the short coverage window on
retransmissions reduces the amount of *new* data the AP can push, and
avoids them entirely.  This baseline implements the alternative the paper
argues against, so the trade-off can be measured: cars send periodic
cumulative NACKs while in coverage; the AP retransmits NACKed packets,
competing for airtime with fresh data.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.core.state import FlowReceptionState
from repro.errors import ConfigurationError
from repro.mac.frames import DataFrame, Frame, NackFrame, NodeId
from repro.mac.medium import Medium, RxInfo
from repro.mobility.base import MobilityModel
from repro.net.ap import AccessPoint, FlowConfig
from repro.net.node import Node
from repro.radio.phy import RadioConfig
from repro.sim import Simulator


class ArqVehicleNode(Node):
    """A car that NACKs its missing packets while in AP coverage.

    Parameters
    ----------
    feedback_period_s:
        Interval between NACK frames while in coverage.
    max_nack_seqs:
        Cap on sequence numbers per NACK frame.
    coverage_window_s:
        An AP frame within this window means "still in coverage".
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        node_id: NodeId,
        mobility: MobilityModel,
        radio: RadioConfig,
        rng: np.random.Generator,
        ap_id: NodeId,
        *,
        feedback_period_s: float = 0.5,
        max_nack_seqs: int = 32,
        coverage_window_s: float = 2.0,
        name: str = "",
    ) -> None:
        super().__init__(sim, medium, node_id, mobility, radio, rng, name=name)
        if feedback_period_s <= 0.0:
            raise ConfigurationError("feedback period must be positive")
        if max_nack_seqs <= 0:
            raise ConfigurationError("max_nack_seqs must be positive")
        self.ap_id = ap_id
        self.state = FlowReceptionState()
        self.feedback_period_s = feedback_period_s
        self.max_nack_seqs = max_nack_seqs
        self.coverage_window_s = coverage_window_s
        self._last_ap_time: float | None = None
        self.nacks_sent = 0
        self.iface.add_receive_callback(self._on_frame)

    def start(self) -> None:
        """Launch the feedback process."""
        self.sim.process(self._feedback_loop(), name=f"{self.name}.nack")

    def in_coverage(self) -> bool:
        """Heard the AP recently enough to bother NACKing."""
        return (
            self._last_ap_time is not None
            and self.sim.now - self._last_ap_time <= self.coverage_window_s
        )

    def _on_frame(self, frame: Frame, info: RxInfo) -> None:
        if not isinstance(frame, DataFrame) or frame.src != self.ap_id:
            return
        self._last_ap_time = self.sim.now
        if frame.flow_dst == self.node_id:
            self.state.record_direct(frame.seq, self.sim.now)

    def _feedback_loop(self) -> typing.Generator[float, None, None]:
        while True:
            yield self.feedback_period_s
            if not self.in_coverage():
                continue
            missing = self.state.missing()[: self.max_nack_seqs]
            if not missing:
                continue
            frame = NackFrame(
                src=self.node_id,
                dst=self.ap_id,
                size_bytes=NackFrame.size_for(len(missing)),
                missing=tuple(missing),
            )
            self.iface.send(frame)
            self.nacks_sent += 1


class ArqAccessPoint(AccessPoint):
    """An AP that retransmits NACKed packets, competing with new data.

    Retransmissions are injected into the same transmit queue as fresh
    packets, so every retransmission delays new data by one frame time —
    the airtime cost the paper's design avoids.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        node_id: NodeId,
        mobility: MobilityModel,
        radio: RadioConfig,
        rng: np.random.Generator,
        flows: typing.Sequence[FlowConfig],
        *,
        max_retx_per_nack: int = 8,
        name: str = "arq-ap",
        **kwargs: typing.Any,
    ) -> None:
        super().__init__(
            sim, medium, node_id, mobility, radio, rng, flows, name=name, **kwargs
        )
        if max_retx_per_nack <= 0:
            raise ConfigurationError("max_retx_per_nack must be positive")
        self.max_retx_per_nack = max_retx_per_nack
        self.retransmissions = 0
        self._flow_by_dst = {f.destination: f for f in flows}
        self.iface.add_receive_callback(self._on_frame)

    def _on_frame(self, frame: Frame, info: RxInfo) -> None:
        if not isinstance(frame, NackFrame):
            return
        flow = self._flow_by_dst.get(NodeId(frame.src))
        if flow is None:
            return
        size = DataFrame.size_for_payload(flow.payload_bytes)
        for seq in frame.missing[: self.max_retx_per_nack]:
            retx = DataFrame(
                src=self.node_id,
                dst=flow.destination,
                size_bytes=size,
                flow_dst=flow.destination,
                seq=seq,
            )
            self.iface.send(retx)
            self.retransmissions += 1
            self.frames_sent_per_flow[flow.destination] += 1
