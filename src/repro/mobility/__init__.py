"""Mobility substrate.

The testbed's three cars drove a small urban loop (paper Fig. 2) at about
20 km/h, with human drivers producing round-to-round variability in gaps
and corner behaviour.  This package substitutes:

* :class:`StaticMobility` — fixed mounts (the AP);
* :class:`PathMobility` — constant-speed motion along a polyline;
* :class:`TraceMobility` — interpolation over a precomputed trajectory;
* :mod:`repro.mobility.idm` — the Intelligent Driver Model integrator that
  generates realistic platoon trajectories (per-driver parameters, corner
  slow-downs, acceleration noise);
* :func:`~repro.mobility.urban.urban_loop` — the Fig. 2 circuit;
* :func:`~repro.mobility.highway.highway_scenario` — the Ott & Kutscher
  drive-thru geometry used by the speed-sweep experiment;
* :mod:`repro.mobility.traceio` — real-recording ingestion: SUMO FCD /
  ns-2 ``setdest`` / CSV parsers normalizing into a :class:`TraceSet`
  that drives :class:`TraceMobility`, plus a deterministic synthetic
  generator.
"""

from repro.mobility.base import MobilityModel, TraceMobility
from repro.mobility.static import StaticMobility
from repro.mobility.path import PathMobility
from repro.mobility.profile import CurvatureSpeedProfile
from repro.mobility.idm import DriverProfile, IdmParameters, simulate_platoon
from repro.mobility.urban import UrbanTestbed, urban_loop
from repro.mobility.highway import HighwayScenario, highway_scenario
from repro.mobility.traceio import TraceSet, VehicleTrace, load_traces, synth_traces

__all__ = [
    "CurvatureSpeedProfile",
    "DriverProfile",
    "HighwayScenario",
    "IdmParameters",
    "MobilityModel",
    "PathMobility",
    "StaticMobility",
    "TraceMobility",
    "TraceSet",
    "UrbanTestbed",
    "VehicleTrace",
    "highway_scenario",
    "load_traces",
    "simulate_platoon",
    "synth_traces",
    "urban_loop",
]
