"""Intelligent Driver Model (IDM) platoon integration.

Treiber's IDM gives the acceleration of a vehicle following a leader at
gap ``s`` with speed ``v`` and approach rate ``Δv``:

    a = a_max · [ 1 − (v/v₀)⁴ − (s*/s)² ]
    s* = s₀ + v·T + v·Δv / (2·√(a_max·b))

The platoon leader follows the track's target-speed profile; each follower
follows its predecessor.  Per-driver parameters plus white acceleration
noise reproduce the round-to-round variability of the human drivers in the
testbed (including the paper's "inexperienced driver of car 2" anecdote:
a timid parameter set brakes earlier at corners, letting car 3 close up).

The integrator produces :class:`~repro.mobility.base.TraceMobility`
trajectories, decoupling vehicle dynamics from the event-driven network
simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import MobilityError
from repro.geom import Polyline
from repro.mobility.base import TraceMobility
from repro.mobility.profile import CurvatureSpeedProfile


@dataclass(frozen=True)
class IdmParameters:
    """Treiber IDM parameters for one driver.

    Attributes
    ----------
    max_acceleration:
        ``a_max`` [m/s²].
    comfortable_deceleration:
        ``b`` [m/s²].
    desired_time_headway:
        ``T`` [s].
    minimum_gap:
        ``s₀`` [m] (bumper-to-bumper standstill gap).
    vehicle_length:
        Used to convert front-bumper positions into gaps [m].
    """

    max_acceleration: float = 1.5
    comfortable_deceleration: float = 2.0
    desired_time_headway: float = 1.4
    minimum_gap: float = 2.0
    vehicle_length: float = 4.5

    def __post_init__(self) -> None:
        if min(
            self.max_acceleration,
            self.comfortable_deceleration,
            self.desired_time_headway,
            self.minimum_gap,
            self.vehicle_length,
        ) <= 0.0:
            raise MobilityError("all IDM parameters must be positive")


@dataclass(frozen=True)
class DriverProfile:
    """A driver: IDM parameters plus behavioural noise.

    Attributes
    ----------
    idm:
        Car-following parameters.
    speed_factor:
        Multiplier on the track target speed (a timid driver < 1).
    acceleration_noise_std:
        White acceleration noise [m/s²] integrated into the dynamics.
    """

    idm: IdmParameters = IdmParameters()
    speed_factor: float = 1.0
    acceleration_noise_std: float = 0.15

    def __post_init__(self) -> None:
        if self.speed_factor <= 0.0:
            raise MobilityError("speed factor must be positive")
        if self.acceleration_noise_std < 0.0:
            raise MobilityError("noise std must be >= 0")

    def timid(self) -> "DriverProfile":
        """A more cautious variant (the paper's car-2 driver).

        Timidity is expressed through a longer desired headway and gentler
        acceleration — *not* a lower cruise speed, which would make the
        platoon drift apart indefinitely instead of stretching at corners
        and re-compacting on straights like the real cars did.
        """
        return replace(
            self,
            idm=replace(
                self.idm,
                max_acceleration=self.idm.max_acceleration * 0.7,
                desired_time_headway=self.idm.desired_time_headway * 1.5,
            ),
        )

    def aggressive(self) -> "DriverProfile":
        """A tighter-following variant (the paper's car-3 driver at corner C)."""
        return replace(
            self,
            idm=replace(
                self.idm,
                max_acceleration=self.idm.max_acceleration * 1.2,
                desired_time_headway=self.idm.desired_time_headway * 0.6,
                minimum_gap=self.idm.minimum_gap * 0.8,
            ),
        )


def _idm_acceleration(
    params: IdmParameters,
    speed: float,
    target_speed: float,
    gap: float | None,
    approach_rate: float,
) -> float:
    """IDM acceleration; ``gap=None`` means free road (the leader)."""
    target_speed = max(target_speed, 0.1)
    free_term = 1.0 - (speed / target_speed) ** 4
    if gap is None:
        return params.max_acceleration * free_term
    gap = max(gap, 0.1)
    desired_gap = (
        params.minimum_gap
        + speed * params.desired_time_headway
        + speed * approach_rate / (2.0 * math.sqrt(
            params.max_acceleration * params.comfortable_deceleration
        ))
    )
    desired_gap = max(desired_gap, params.minimum_gap)
    interaction = (desired_gap / gap) ** 2
    return params.max_acceleration * (free_term - interaction)


def simulate_platoon(
    track: Polyline,
    profile: CurvatureSpeedProfile,
    drivers: list[DriverProfile],
    *,
    duration: float,
    rng: np.random.Generator,
    dt: float = 0.1,
    initial_gap: float = 12.0,
    lead_start_arc: float = 0.0,
) -> list[TraceMobility]:
    """Integrate a platoon and return one trajectory per car.

    Cars are returned leader-first (car 1, car 2, …); car *i* starts
    ``i · initial_gap`` metres behind the leader.

    Parameters
    ----------
    track:
        Road to drive (closed = keep lapping).
    profile:
        Target-speed profile the leader follows.
    drivers:
        One profile per car (at least one).
    duration:
        Simulated horizon [s].
    rng:
        Randomness for acceleration noise (one stream per round gives
        independent rounds).
    dt:
        Integration step [s].
    initial_gap:
        Initial front-bumper spacing [m].
    lead_start_arc:
        Leader's initial arc-length position.
    """
    if not drivers:
        raise MobilityError("a platoon needs at least one driver")
    if duration <= 0.0 or dt <= 0.0:
        raise MobilityError("duration and dt must be positive")

    n = len(drivers)
    steps = int(round(duration / dt)) + 1
    positions = np.zeros((n, steps))   # unwrapped arc length
    speeds = np.zeros((n, steps))
    for i in range(n):
        positions[i, 0] = lead_start_arc - i * initial_gap
        speeds[i, 0] = profile.target_speed(lead_start_arc) * drivers[i].speed_factor

    noise_std = np.array([d.acceleration_noise_std for d in drivers])
    sqrt_dt = math.sqrt(dt)

    for k in range(1, steps):
        noise = rng.normal(0.0, 1.0, size=n) * noise_std / max(sqrt_dt, 1e-9) * dt
        for i in range(n):
            driver = drivers[i]
            v = speeds[i, k - 1]
            s_here = positions[i, k - 1]
            target = profile.target_speed(s_here) * driver.speed_factor
            if i == 0:
                gap = None
                approach = 0.0
            else:
                gap = (
                    positions[i - 1, k - 1]
                    - s_here
                    - drivers[i - 1].idm.vehicle_length
                )
                approach = v - speeds[i - 1, k - 1]
            accel = _idm_acceleration(driver.idm, v, target, gap, approach)
            v_new = max(v + (accel * dt) + noise[i], 0.0)
            positions[i, k] = s_here + 0.5 * (v + v_new) * dt
            speeds[i, k] = v_new

    times = [k * dt for k in range(steps)]
    return [
        TraceMobility(track, times, positions[i].tolist())
        for i in range(n)
    ]
