"""Mobility interfaces and trace-based models."""

from __future__ import annotations

import abc
import bisect
from collections.abc import Sequence

import numpy as np

from repro.errors import MobilityError
from repro.geom import Polyline, Vec2


class MobilityModel(abc.ABC):
    """Interface: simulated time → position.

    Models must be pure functions of time (no hidden clock) so the radio
    layer can query positions at arbitrary instants.
    """

    @abc.abstractmethod
    def position(self, time: float) -> Vec2:
        """Position at simulated *time* seconds."""

    def positions_at(self, times: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batch :meth:`position`: ``(xs, ys)`` over a whole time array.

        Must be bit-identical to mapping the scalar method (this default
        simply does that); track-based models vectorize through
        :meth:`repro.geom.Polyline.points_at`.
        """
        xs = np.empty(times.shape[0])
        ys = np.empty(times.shape[0])
        for i, time in enumerate(times.tolist()):
            pos = self.position(time)
            xs[i] = pos.x
            ys[i] = pos.y
        return xs, ys

    def batch_key(self):
        """Grouping key for cross-model batched queries, or ``None``.

        Models returning the same (non-``None``) key promise that
        :meth:`positions_at_time` can evaluate any mix of them at one
        instant in a single vectorized pass, bit-identical to calling
        :meth:`position` on each.  The medium's batch reception kernel
        uses this to replace its per-candidate position round-trips with
        one batched mobility query per timestamp.
        """
        return None

    @staticmethod
    def positions_at_time(
        models: "list[MobilityModel]", time: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Positions of *models* (one shared :meth:`batch_key`) at *time*."""
        raise NotImplementedError

    def speed(self, time: float) -> float:
        """Scalar speed at *time*; default via symmetric differencing."""
        dt = 0.05
        before = self.position(max(time - dt, 0.0))
        after = self.position(time + dt)
        return before.distance_to(after) / (2.0 * dt)


class TraceMobility(MobilityModel):
    """Follows a precomputed arc-length trajectory along a track.

    Parameters
    ----------
    track:
        The road the trajectory lives on.
    times:
        Strictly increasing sample instants.
    arc_lengths:
        Arc-length coordinate (unwrapped — it may exceed the track length
        on loops, increasing monotonically lap after lap) at each instant.

    Queries before the first sample clamp to the first; queries after the
    last clamp to the last (the car has parked).
    """

    def __init__(
        self,
        track: Polyline,
        times: Sequence[float],
        arc_lengths: Sequence[float],
    ) -> None:
        if len(times) != len(arc_lengths):
            raise MobilityError("times and arc_lengths must have equal length")
        if len(times) < 2:
            raise MobilityError("a trace needs at least two samples")
        for a, b in zip(times, times[1:]):
            if b <= a:
                raise MobilityError("trace times must be strictly increasing")
        self.track = track
        self._times = list(times)
        self._arcs = list(arc_lengths)

    def arc_length(self, time: float) -> float:
        """Unwrapped arc-length coordinate at *time* (linear interpolation)."""
        times, arcs = self._times, self._arcs
        if time <= times[0]:
            return arcs[0]
        if time >= times[-1]:
            return arcs[-1]
        idx = bisect.bisect_right(times, time) - 1
        t0, t1 = times[idx], times[idx + 1]
        frac = (time - t0) / (t1 - t0)
        return arcs[idx] + (arcs[idx + 1] - arcs[idx]) * frac

    def position(self, time: float) -> Vec2:
        return self.track.point_at(self.arc_length(time))

    def arc_lengths(self, times: np.ndarray) -> np.ndarray:
        """Batch :meth:`arc_length` (same interpolation, elementwise)."""
        time_grid = np.array(self._times)
        arc_grid = np.array(self._arcs)
        idx = np.searchsorted(time_grid, times, side="right") - 1
        idx = np.clip(idx, 0, len(self._times) - 2)
        t0 = time_grid[idx]
        t1 = time_grid[idx + 1]
        frac = (times - t0) / (t1 - t0)
        arcs = arc_grid[idx] + (arc_grid[idx + 1] - arc_grid[idx]) * frac
        arcs = np.where(times <= self._times[0], self._arcs[0], arcs)
        return np.where(times >= self._times[-1], self._arcs[-1], arcs)

    def positions_at(self, times: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self.track.points_at(self.arc_lengths(times))

    def batch_key(self):
        # Traces on one track batch their polyline projection; the
        # per-trace arc interpolation stays scalar (each trace has its
        # own time grid) but the point_at chain — the expensive half —
        # vectorizes.
        return ("trace", id(self.track))

    @staticmethod
    def positions_at_time(
        models: "list[TraceMobility]", time: float
    ) -> tuple[np.ndarray, np.ndarray]:
        arcs = np.array([m.arc_length(time) for m in models])
        return models[0].track.points_at(arcs)

    def speed(self, time: float) -> float:
        dt = 0.05
        s0 = self.arc_length(max(time - dt, self._times[0]))
        s1 = self.arc_length(time + dt)
        return abs(s1 - s0) / (2.0 * dt)

    @property
    def duration(self) -> float:
        """Last sample instant."""
        return self._times[-1]
