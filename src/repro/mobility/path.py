"""Constant-speed motion along a polyline."""

from __future__ import annotations

from repro.errors import MobilityError
from repro.geom import Polyline, Vec2
from repro.mobility.base import MobilityModel


class PathMobility(MobilityModel):
    """Moves along a track at constant speed.

    Used directly for simple scenarios (quickstart, highway pass) and by
    unit tests; the urban testbed uses IDM traces instead.

    Parameters
    ----------
    track:
        The path to follow.
    speed:
        Constant speed in m/s (must be positive).
    start_arc_length:
        Position on the track at ``start_time``.
    start_time:
        Instant at which motion begins; before it the node idles at the
        start position.  On open tracks the node parks at the end.
    """

    def __init__(
        self,
        track: Polyline,
        speed: float,
        *,
        start_arc_length: float = 0.0,
        start_time: float = 0.0,
    ) -> None:
        if speed <= 0.0:
            raise MobilityError(f"speed must be positive, got {speed!r}")
        self.track = track
        self._speed = speed
        self._start_arc = start_arc_length
        self._start_time = start_time

    def arc_length(self, time: float) -> float:
        """Unwrapped arc-length coordinate at *time*."""
        elapsed = max(time - self._start_time, 0.0)
        s = self._start_arc + self._speed * elapsed
        if not self.track.closed:
            s = min(s, self.track.length)
        return s

    def position(self, time: float) -> Vec2:
        return self.track.point_at(self.arc_length(time))

    def speed(self, time: float) -> float:
        if time < self._start_time:
            return 0.0
        if not self.track.closed and self.arc_length(time) >= self.track.length:
            return 0.0
        return self._speed
