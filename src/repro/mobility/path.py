"""Constant-speed motion along a polyline."""

from __future__ import annotations

import numpy as np

from repro.errors import MobilityError
from repro.geom import Polyline, Vec2
from repro.mobility.base import MobilityModel


class PathMobility(MobilityModel):
    """Moves along a track at constant speed.

    Used directly for simple scenarios (quickstart, highway pass) and by
    unit tests; the urban testbed uses IDM traces instead.

    Parameters
    ----------
    track:
        The path to follow.
    speed:
        Constant speed in m/s (must be positive).
    start_arc_length:
        Position on the track at ``start_time``.
    start_time:
        Instant at which motion begins; before it the node idles at the
        start position.  On open tracks the node parks at the end.
    """

    def __init__(
        self,
        track: Polyline,
        speed: float,
        *,
        start_arc_length: float = 0.0,
        start_time: float = 0.0,
    ) -> None:
        if speed <= 0.0:
            raise MobilityError(f"speed must be positive, got {speed!r}")
        self.track = track
        self._speed = speed
        self._start_arc = start_arc_length
        self._start_time = start_time
        # One attribute read hands the batch queries all three scalars.
        self._params = (start_arc_length, speed, start_time)

    def arc_length(self, time: float) -> float:
        """Unwrapped arc-length coordinate at *time*."""
        elapsed = max(time - self._start_time, 0.0)
        s = self._start_arc + self._speed * elapsed
        if not self.track.closed:
            s = min(s, self.track.length)
        return s

    def position(self, time: float) -> Vec2:
        return self.track.point_at(self.arc_length(time))

    def positions_at(self, times: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        elapsed = np.maximum(times - self._start_time, 0.0)
        s = self._start_arc + self._speed * elapsed
        if not self.track.closed:
            s = np.minimum(s, self.track.length)
        return self.track.points_at(s)

    def batch_key(self):
        # All constant-speed models on one track evaluate together: the
        # arc formula vectorizes over per-model parameters and the track
        # projects the batch in one pass.
        return ("path", id(self.track))

    @staticmethod
    def positions_at_time(
        models: "list[PathMobility]", time: float
    ) -> tuple[np.ndarray, np.ndarray]:
        params = np.array([m._params for m in models])
        track = models[0].track
        elapsed = np.maximum(time - params[:, 2], 0.0)
        s = params[:, 0] + params[:, 1] * elapsed
        if not track.closed:
            s = np.minimum(s, track.length)
        return track.points_at(s)

    def speed(self, time: float) -> float:
        if time < self._start_time:
            return 0.0
        if not self.track.closed and self.arc_length(time) >= self.track.length:
            return 0.0
        return self._speed
