"""The paper's urban testbed geometry (Fig. 2).

The testbed loop circles a university block: the AP antenna sits in a
first-floor office window on one street; cars drive the block
counter-clockwise at about 20 km/h; the corner labelled *C* in the paper is
where the inexperienced driver of car 2 braked and car 3 closed up.

We model the block as a rectangular circuit.  The exact street lengths of
the real campus are unknown (and irrelevant to the phenomenon); what the
reproduction needs is (a) a coverage window a few tens of seconds long on
one street, (b) a dark area covering the rest of the loop, and (c) corners
that modulate platoon spacing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.geom import Polyline, Vec2
from repro.geom.shapes import AxisRect


@dataclass(frozen=True)
class UrbanTestbed:
    """Geometry of the urban loop scenario.

    Attributes
    ----------
    track:
        The closed circuit driven by the cars.
    ap_position:
        The AP antenna (set back from the street — in the building).
    start_arc_length:
        Where the platoon leader starts a round: diametrically opposite
        the AP street, deep in the dark area.
    corner_c_arc_length:
        Arc-length coordinate of the paper's corner *C* (the corner the
        cars turn just before re-entering the AP street).
    buildings:
        Building footprints: the block the loop circles (confining AP
        coverage to its street and creating the dark area) and the row of
        facades behind the far side of the AP street.
    """

    track: Polyline
    ap_position: Vec2
    start_arc_length: float
    corner_c_arc_length: float
    buildings: tuple[AxisRect, ...] = ()


def urban_loop(
    *,
    block_width: float = 95.0,
    block_height: float = 75.0,
    ap_street_fraction: float = 0.5,
    ap_setback: float = 12.0,
) -> UrbanTestbed:
    """Build the Fig. 2 urban circuit.

    Parameters
    ----------
    block_width:
        Length of the AP street [m] (the bottom edge, driven left→right).
    block_height:
        Length of the side streets [m].
    ap_street_fraction:
        Where along the AP street the antenna sits (0 = start corner,
        1 = end corner).
    ap_setback:
        Perpendicular distance from the street to the antenna [m]
        (the office is inside the building).

    Returns
    -------
    UrbanTestbed
        Geometry bundle used by the scenario builder.
    """
    if not 0.0 <= ap_street_fraction <= 1.0:
        raise ConfigurationError("ap_street_fraction must be in [0, 1]")
    if ap_setback < 0.0:
        raise ConfigurationError("ap_setback must be >= 0")
    track = Polyline.rectangle(block_width, block_height)
    # Bottom edge runs from (0,0) to (width,0); the AP is set back on the
    # building side (negative y — the far side from the block interior).
    ap_position = Vec2(block_width * ap_street_fraction, -ap_setback)
    perimeter = track.length
    # Start opposite the AP street: middle of the top edge.  The top edge
    # spans arc lengths [width + height, 2*width + height] (driven in the
    # -x direction), so its middle is at width*1.5 + height.
    start_arc = 1.5 * block_width + block_height
    # Corner C: the last corner before re-entering the AP street, i.e. the
    # rectangle vertex at (0, 0) whose arc length is 0 ≡ perimeter.
    corner_c = perimeter
    # The block the loop circles, inset from the kerb line so cars on the
    # streets are outside it, plus the facade row behind the AP street on
    # the AP's side (the AP's own window bay is left open).
    street_clearance = 6.0
    inner_block = AxisRect(
        street_clearance,
        street_clearance,
        block_width - street_clearance,
        block_height - street_clearance,
    )
    return UrbanTestbed(
        track=track,
        ap_position=ap_position,
        start_arc_length=start_arc,
        corner_c_arc_length=corner_c,
        buildings=(inner_block,),
    )
