"""Target-speed profiles along a track.

Human drivers slow down at corners.  :class:`CurvatureSpeedProfile` maps
each vertex turn angle to a corner speed and blends it over an approach /
exit window, yielding the target speed ``v*(s)`` the IDM leader follows.
"""

from __future__ import annotations

import math

from repro.errors import MobilityError
from repro.geom import Polyline


class CurvatureSpeedProfile:
    """Position-dependent target speed with corner slow-downs.

    Parameters
    ----------
    track:
        The road (its vertex turn angles define the corners).
    cruise_speed:
        Target on straights [m/s].
    corner_speed:
        Target at a 90° corner [m/s]; sharper corners get proportionally
        slower, gentler ones faster (linear in turn angle).
    transition_distance:
        Length of the deceleration/acceleration ramp on each side of a
        corner [m].
    """

    def __init__(
        self,
        track: Polyline,
        *,
        cruise_speed: float,
        corner_speed: float,
        transition_distance: float = 15.0,
    ) -> None:
        if cruise_speed <= 0.0 or corner_speed <= 0.0:
            raise MobilityError("speeds must be positive")
        if corner_speed > cruise_speed:
            raise MobilityError("corner speed cannot exceed cruise speed")
        if transition_distance <= 0.0:
            raise MobilityError("transition distance must be positive")
        self.track = track
        self.cruise_speed = cruise_speed
        self.corner_speed = corner_speed
        self.transition_distance = transition_distance
        self._corners = self._find_corners()

    def _find_corners(self) -> list[tuple[float, float]]:
        """``(arc length, corner target speed)`` for every bending vertex."""
        corners: list[tuple[float, float]] = []
        n = len(self.track.points)
        vertex_range = range(n) if self.track.closed else range(1, n - 1)
        for idx in vertex_range:
            angle = self.track.turn_angle_at_vertex(idx)
            if angle < math.radians(10.0):
                continue  # effectively straight
            # Linear in turn angle: 90° → corner_speed, 0° → cruise.
            fraction = min(angle / (math.pi / 2.0), 1.5)
            speed = self.cruise_speed - (self.cruise_speed - self.corner_speed) * min(
                fraction, 1.0
            )
            if fraction > 1.0:  # sharper than 90°: even slower
                speed = max(self.corner_speed * (2.0 - fraction), 0.5 * self.corner_speed)
            corners.append((self.track.vertex_arc_length(idx), speed))
        return corners

    def target_speed(self, arc_length: float) -> float:
        """Target speed at the given (unwrapped) arc-length position."""
        if self.track.closed:
            s = arc_length % self.track.length
        else:
            s = min(max(arc_length, 0.0), self.track.length)
        speed = self.cruise_speed
        for corner_s, corner_speed in self._corners:
            distance = abs(s - corner_s)
            if self.track.closed:
                distance = min(distance, self.track.length - distance)
            if distance >= self.transition_distance:
                continue
            # Linear ramp from cruise at the window edge to the corner speed.
            blend = 1.0 - distance / self.transition_distance
            candidate = self.cruise_speed - (self.cruise_speed - corner_speed) * blend
            speed = min(speed, candidate)
        return speed
