"""Mobility of things that do not move."""

from __future__ import annotations

from repro.geom import Vec2
from repro.mobility.base import MobilityModel


class StaticMobility(MobilityModel):
    """A fixed mount — the AP antenna in the office window."""

    def __init__(self, position: Vec2) -> None:
        self._position = position

    def position(self, time: float) -> Vec2:
        return self._position

    def speed(self, time: float) -> float:
        return 0.0
