"""Mobility of things that do not move."""

from __future__ import annotations

import numpy as np

from repro.geom import Vec2
from repro.mobility.base import MobilityModel


class StaticMobility(MobilityModel):
    """A fixed mount — the AP antenna in the office window."""

    def __init__(self, position: Vec2) -> None:
        self._position = position

    def position(self, time: float) -> Vec2:
        return self._position

    def positions_at(self, times: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        n = times.shape[0]
        return (
            np.full(n, self._position.x),
            np.full(n, self._position.y),
        )

    def batch_key(self):
        # All static mounts evaluate together: one array gather replaces
        # a position_fn call chain per candidate (multi-AP corridors
        # carry dozens of infostations per broadcast).
        return ("static",)

    @staticmethod
    def positions_at_time(
        models: "list[StaticMobility]", time: float
    ) -> tuple[np.ndarray, np.ndarray]:
        return (
            np.array([m._position.x for m in models]),
            np.array([m._position.y for m in models]),
        )

    def speed(self, time: float) -> float:
        return 0.0
