"""The drive-thru highway geometry (after Ott & Kutscher [1]).

A straight road passes an AP placed a small distance off the roadside.
Cars traverse it once at highway speed.  This is the geometry behind the
paper's motivation numbers ("50–60 % losses depending on speed") and is
used by the speed-sweep experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.geom import Polyline, Vec2


@dataclass(frozen=True)
class HighwayScenario:
    """Geometry of one drive-thru pass.

    Attributes
    ----------
    track:
        Open straight road, driven start→end.
    ap_position:
        AP mast position (off the roadside at the middle of the road).
    """

    track: Polyline
    ap_position: Vec2


def highway_scenario(
    *,
    road_length: float = 2000.0,
    ap_offset: float = 20.0,
) -> HighwayScenario:
    """Build a straight drive-thru road with a mid-road AP.

    Parameters
    ----------
    road_length:
        Total road length [m]; cars start far outside coverage.
    ap_offset:
        Perpendicular distance of the AP from the road [m].
    """
    if road_length <= 0.0:
        raise ConfigurationError("road length must be positive")
    if ap_offset < 0.0:
        raise ConfigurationError("ap_offset must be >= 0")
    track = Polyline.straight(road_length)
    ap_position = Vec2(road_length / 2.0, ap_offset)
    return HighwayScenario(track=track, ap_position=ap_position)
