"""The normalized mobility-trace model every parser feeds.

A :class:`VehicleTrace` is one vehicle's timestamped 2-D waypoints; a
:class:`TraceSet` is a whole recording — the common shape that the SUMO
FCD, ns-2 ``setdest``, and CSV parsers all normalize into, that the
synthetic generator emits, and that the ``trace`` scenario turns into
mobility models.  Normalization happens exactly once, at construction
(:meth:`VehicleTrace.from_samples`): samples are sorted by time, exact
duplicate samples merged, and contradictory duplicates (same instant,
different position) rejected, so everything downstream can assume a
clean, strictly-increasing time grid.

Transformations (:meth:`TraceSet.resampled`, :meth:`TraceSet.cropped`,
:meth:`TraceSet.scaled`, :meth:`TraceSet.rebased`) are pure — each
returns a new set — which keeps the scenario config declarative: the
same trace file plus the same knobs always yields the same mobility.

The bridge to the simulator is :meth:`TraceSet.to_mobility`: every
moving vehicle becomes a :class:`~repro.mobility.base.TraceMobility` on
one *shared scene polyline* (all vehicle paths concatenated, each
vehicle addressing only its own arc-length span).  Sharing one track
gives every trace vehicle the same ``batch_key``, so the medium's batch
reception kernel (PR 4) evaluates the whole population's positions in a
single vectorized :meth:`TraceMobility.positions_at_time` pass —
bit-identical to the scalar queries, as pinned by the mobility tests.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.errors import TraceFormatError
from repro.geom import Polyline, Vec2
from repro.mobility.base import MobilityModel, TraceMobility
from repro.mobility.static import StaticMobility

#: Length units a parser accepts, as metres-per-unit factors.  Traces in
#: anything else must be pre-scaled by the caller (``scaled``).
UNIT_SCALES: dict[str, float] = {
    "m": 1.0,
    "km": 1000.0,
    "cm": 0.01,
    "ft": 0.3048,
    "mi": 1609.344,
}


def unit_scale(unit: str) -> float:
    """Metres per *unit*; raises :class:`TraceFormatError` when unknown."""
    try:
        return UNIT_SCALES[unit]
    except KeyError:
        raise TraceFormatError(
            f"unknown length unit {unit!r}; known: "
            f"{', '.join(sorted(UNIT_SCALES))}"
        ) from None


def _finite(value: float, what: str) -> float:
    if not math.isfinite(value):
        raise TraceFormatError(f"{what} is not finite: {value!r}")
    return value


@dataclass(frozen=True)
class VehicleTrace:
    """One vehicle's trajectory: parallel ``times`` / ``xs`` / ``ys``.

    Invariants (enforced at construction): at least one sample, equal
    tuple lengths, strictly increasing times, all values finite.  Build
    from raw parser output with :meth:`from_samples`, which sorts and
    dedups first.
    """

    vehicle_id: str
    times: tuple[float, ...]
    xs: tuple[float, ...]
    ys: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.times:
            raise TraceFormatError(
                f"vehicle {self.vehicle_id!r} has no samples"
            )
        if not (len(self.times) == len(self.xs) == len(self.ys)):
            raise TraceFormatError(
                f"vehicle {self.vehicle_id!r}: times/xs/ys lengths differ"
            )
        for t, x, y in zip(self.times, self.xs, self.ys):
            _finite(t, f"vehicle {self.vehicle_id!r} time")
            _finite(x, f"vehicle {self.vehicle_id!r} x")
            _finite(y, f"vehicle {self.vehicle_id!r} y")
        for a, b in zip(self.times, self.times[1:]):
            if b <= a:
                raise TraceFormatError(
                    f"vehicle {self.vehicle_id!r}: times must be strictly "
                    f"increasing (saw {a!r} then {b!r})"
                )

    @classmethod
    def from_samples(
        cls, vehicle_id: str, samples: Iterable[tuple[float, float, float]]
    ) -> "VehicleTrace":
        """Normalize raw ``(time, x, y)`` samples into a trace.

        Samples are sorted by time (recordings interleaved by timestep —
        SUMO FCD — or shuffled rows are fine); exact duplicates merge;
        two samples at the same instant with *different* positions are
        contradictory and rejected.
        """
        ordered = sorted(samples, key=lambda s: s[0])
        if not ordered:
            raise TraceFormatError(f"vehicle {vehicle_id!r} has no samples")
        times: list[float] = []
        xs: list[float] = []
        ys: list[float] = []
        for t, x, y in ordered:
            if times and t == times[-1]:
                if x == xs[-1] and y == ys[-1]:
                    continue  # exact duplicate sample
                raise TraceFormatError(
                    f"vehicle {vehicle_id!r}: two samples at t={t!r} "
                    f"disagree on position (({xs[-1]!r}, {ys[-1]!r}) vs "
                    f"({x!r}, {y!r}))"
                )
            times.append(float(t))
            xs.append(float(x))
            ys.append(float(y))
        return cls(vehicle_id, tuple(times), tuple(xs), tuple(ys))

    # -- basic queries --------------------------------------------------------

    @property
    def start_time(self) -> float:
        return self.times[0]

    @property
    def end_time(self) -> float:
        return self.times[-1]

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def bounds(self) -> tuple[float, float, float, float]:
        """``(x_min, y_min, x_max, y_max)`` over the samples."""
        return min(self.xs), min(self.ys), max(self.xs), max(self.ys)

    def path_length(self) -> float:
        """Total distance travelled along the sampled waypoints."""
        total = 0.0
        for i in range(1, len(self.times)):
            total += math.hypot(
                self.xs[i] - self.xs[i - 1], self.ys[i] - self.ys[i - 1]
            )
        return total

    def position_at(self, time: float) -> tuple[float, float]:
        """Linear interpolation, clamped to the first/last sample."""
        times = self.times
        if time <= times[0]:
            return self.xs[0], self.ys[0]
        if time >= times[-1]:
            return self.xs[-1], self.ys[-1]
        import bisect

        idx = bisect.bisect_right(times, time) - 1
        frac = (time - times[idx]) / (times[idx + 1] - times[idx])
        x = self.xs[idx] + (self.xs[idx + 1] - self.xs[idx]) * frac
        y = self.ys[idx] + (self.ys[idx + 1] - self.ys[idx]) * frac
        return x, y

    def is_stationary(self) -> bool:
        """Whether every sample sits at the same point."""
        return all(
            x == self.xs[0] and y == self.ys[0]
            for x, y in zip(self.xs, self.ys)
        )

    # -- pure transformations -------------------------------------------------

    def scaled(self, factor: float) -> "VehicleTrace":
        """Coordinates multiplied by *factor* (unit conversion)."""
        if factor <= 0.0 or not math.isfinite(factor):
            raise TraceFormatError(f"scale factor must be positive, got {factor!r}")
        if factor == 1.0:
            return self
        return VehicleTrace(
            self.vehicle_id,
            self.times,
            tuple(x * factor for x in self.xs),
            tuple(y * factor for y in self.ys),
        )

    def shifted(self, dt: float) -> "VehicleTrace":
        """Times shifted by *dt* seconds."""
        if dt == 0.0:
            return self
        return VehicleTrace(
            self.vehicle_id,
            tuple(t + dt for t in self.times),
            self.xs,
            self.ys,
        )

    def resampled(self, tick_s: float, *, origin: float | None = None) -> "VehicleTrace":
        """Linear resampling onto the grid ``origin + k·tick_s``.

        Only grid instants inside ``[start_time, end_time]`` are kept (a
        trace never extrapolates); when no grid instant falls inside the
        span, the first sample alone survives, so a short-lived vehicle
        degrades to a stationary appearance rather than vanishing.
        Resampling a trace already on the grid is the identity: at an
        exact sample instant the interpolation weight is 0 and the
        original float values pass through untouched.
        """
        if tick_s <= 0.0 or not math.isfinite(tick_s):
            raise TraceFormatError(f"tick must be positive, got {tick_s!r}")
        base = self.start_time if origin is None else origin
        first = math.ceil((self.start_time - base) / tick_s - 1e-9)
        samples: list[tuple[float, float, float]] = []
        k = first
        while True:
            t = base + k * tick_s
            if t > self.end_time + 1e-9 * tick_s:
                break
            t = min(max(t, self.start_time), self.end_time)
            x, y = self.position_at(t)
            samples.append((t, x, y))
            k += 1
        if not samples:
            samples.append((self.start_time, self.xs[0], self.ys[0]))
        return VehicleTrace.from_samples(self.vehicle_id, samples)

    def cropped_time(self, t_min: float | None, t_max: float | None) -> "VehicleTrace | None":
        """Samples within the window, or ``None`` when none survive."""
        kept = [
            (t, x, y)
            for t, x, y in zip(self.times, self.xs, self.ys)
            if (t_min is None or t >= t_min) and (t_max is None or t <= t_max)
        ]
        if not kept:
            return None
        return VehicleTrace.from_samples(self.vehicle_id, kept)

    def cropped_bbox(
        self,
        x_min: float | None,
        y_min: float | None,
        x_max: float | None,
        y_max: float | None,
    ) -> "VehicleTrace | None":
        """The longest contiguous in-box run of samples, or ``None``.

        Keeping one contiguous run (not every in-box sample) matters:
        a vehicle that leaves and re-enters the box must not teleport
        across the gap, which is what stitching disjoint runs into one
        trace would produce.
        """

        def inside(x: float, y: float) -> bool:
            return (
                (x_min is None or x >= x_min)
                and (x_max is None or x <= x_max)
                and (y_min is None or y >= y_min)
                and (y_max is None or y <= y_max)
            )

        best: list[tuple[float, float, float]] = []
        run: list[tuple[float, float, float]] = []
        for t, x, y in zip(self.times, self.xs, self.ys):
            if inside(x, y):
                run.append((t, x, y))
            else:
                if len(run) > len(best):
                    best = run
                run = []
        if len(run) > len(best):
            best = run
        if not best:
            return None
        return VehicleTrace.from_samples(self.vehicle_id, best)


class TraceSet:
    """A whole mobility recording: one :class:`VehicleTrace` per vehicle.

    Vehicle order is the sorted id order everywhere (iteration, node-id
    assignment in the ``trace`` scenario, the scene polyline), so a
    parsed file always produces the same simulation wiring.
    """

    def __init__(self, vehicles: Mapping[str, VehicleTrace] | Iterable[VehicleTrace]) -> None:
        if isinstance(vehicles, Mapping):
            traces = list(vehicles.values())
        else:
            traces = list(vehicles)
        if not traces:
            raise TraceFormatError("a trace set needs at least one vehicle")
        by_id: dict[str, VehicleTrace] = {}
        for trace in traces:
            if trace.vehicle_id in by_id:
                raise TraceFormatError(
                    f"duplicate vehicle id {trace.vehicle_id!r}"
                )
            by_id[trace.vehicle_id] = trace
        self._vehicles = {vid: by_id[vid] for vid in sorted(by_id)}

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._vehicles)

    def __iter__(self):
        return iter(self._vehicles.values())

    def __getitem__(self, vehicle_id: str) -> VehicleTrace:
        return self._vehicles[vehicle_id]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceSet):
            return NotImplemented
        return self._vehicles == other._vehicles

    def __repr__(self) -> str:
        return (
            f"TraceSet({len(self)} vehicles, "
            f"t=[{self.start_time:g}, {self.end_time:g}])"
        )

    @property
    def vehicle_ids(self) -> list[str]:
        """Sorted vehicle ids."""
        return list(self._vehicles)

    # -- aggregate queries ----------------------------------------------------

    @property
    def start_time(self) -> float:
        return min(t.start_time for t in self)

    @property
    def end_time(self) -> float:
        return max(t.end_time for t in self)

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def bounds(self) -> tuple[float, float, float, float]:
        """``(x_min, y_min, x_max, y_max)`` over every vehicle."""
        boxes = [t.bounds() for t in self]
        return (
            min(b[0] for b in boxes),
            min(b[1] for b in boxes),
            max(b[2] for b in boxes),
            max(b[3] for b in boxes),
        )

    def sample_count(self) -> int:
        return sum(len(t.times) for t in self)

    def summary(self) -> dict:
        """Human/CLI-facing statistics (``repro trace info``)."""
        x_min, y_min, x_max, y_max = self.bounds()
        path = sum(t.path_length() for t in self)
        moving_time = sum(t.duration for t in self)
        return {
            "vehicles": len(self),
            "samples": self.sample_count(),
            "start_time_s": self.start_time,
            "end_time_s": self.end_time,
            "duration_s": self.duration,
            "bbox_m": [x_min, y_min, x_max, y_max],
            "total_path_m": path,
            "mean_speed_ms": path / moving_time if moving_time > 0.0 else 0.0,
        }

    # -- pure transformations -------------------------------------------------

    def _replace(self, traces: Iterable[VehicleTrace | None]) -> "TraceSet":
        kept = [t for t in traces if t is not None]
        if not kept:
            raise TraceFormatError("no vehicle survived the crop")
        return TraceSet(kept)

    def scaled(self, factor: float) -> "TraceSet":
        """All coordinates multiplied by *factor*."""
        return self._replace(t.scaled(factor) for t in self)

    def rebased(self) -> "TraceSet":
        """Times shifted so the earliest sample sits at t = 0.

        Recordings often start at an absolute wall-clock or simulation
        offset; the scenario layer always rebases so round time 0 is the
        first trace instant.
        """
        return self._replace(t.shifted(-self.start_time) for t in self)

    def resampled(self, tick_s: float) -> "TraceSet":
        """Every vehicle resampled onto one shared grid.

        The grid is anchored at the set's :attr:`start_time`, so two
        vehicles sampled at the same instant stay sampled at the same
        instant — the property the scenario's one-batched-mobility-query
        -per-timestamp path benefits from.
        """
        origin = self.start_time
        return self._replace(t.resampled(tick_s, origin=origin) for t in self)

    def cropped(
        self,
        *,
        t_min: float | None = None,
        t_max: float | None = None,
        x_min: float | None = None,
        y_min: float | None = None,
        x_max: float | None = None,
        y_max: float | None = None,
    ) -> "TraceSet":
        """Time-window and/or bounding-box crop (see the vehicle methods)."""
        traces: list[VehicleTrace | None] = []
        for trace in self:
            cropped: VehicleTrace | None = trace
            if t_min is not None or t_max is not None:
                cropped = cropped.cropped_time(t_min, t_max)
            if cropped is not None and (
                x_min is not None
                or y_min is not None
                or x_max is not None
                or y_max is not None
            ):
                cropped = cropped.cropped_bbox(x_min, y_min, x_max, y_max)
            traces.append(cropped)
        return self._replace(traces)

    # -- the bridge to the simulator ------------------------------------------

    def to_mobility(self) -> dict[str, MobilityModel]:
        """One mobility model per vehicle, sorted-id order.

        Moving vehicles become :class:`TraceMobility` instances that all
        share one *scene polyline*: every vehicle's (spatially deduped)
        waypoints are concatenated into a single track, and each vehicle
        addresses only its own arc-length span.  The joining segments
        between two vehicles' paths are never traversed — no arc value
        handed to :class:`TraceMobility` crosses a span boundary.
        Sharing the track makes every trace vehicle report the same
        ``batch_key``, which is what lets the medium's batch kernel
        evaluate all their positions in one vectorized pass.

        Vehicles with a single sample — or whose samples never move —
        become :class:`StaticMobility` (there is no path to follow).
        """
        scene_points: list[Vec2] = []
        # Arc length at each scene vertex, accumulated with the same
        # Vec2.distance_to chain Polyline's constructor runs, so the arc
        # values below are bit-identical to the track's internal table.
        scene_arcs: list[float] = []
        plans: list[tuple[str, tuple[float, ...], list[float]] | tuple[str, Vec2]] = []

        for trace in self:
            if len(trace.times) < 2 or trace.is_stationary():
                plans.append((trace.vehicle_id, Vec2(trace.xs[0], trace.ys[0])))
                continue
            # Spatially dedup consecutive samples: a stationary dwell is
            # several times mapping to one waypoint (a plateau in the
            # arc-length trajectory), not a zero-length track segment.
            sample_arcs: list[float] = []
            for i, (x, y) in enumerate(zip(trace.xs, trace.ys)):
                point = Vec2(x, y)
                if sample_arcs and scene_points[-1].distance_to(point) == 0.0:
                    sample_arcs.append(scene_arcs[-1])
                    continue
                if scene_points:
                    step = scene_points[-1].distance_to(point)
                    if i == 0 and step == 0.0:
                        # This vehicle starts exactly where the previous
                        # path ended: share the vertex.
                        sample_arcs.append(scene_arcs[-1])
                        continue
                    scene_arcs.append(scene_arcs[-1] + step)
                else:
                    scene_arcs.append(0.0)
                scene_points.append(point)
                sample_arcs.append(scene_arcs[-1])
            plans.append((trace.vehicle_id, trace.times, sample_arcs))

        track = Polyline(scene_points) if len(scene_points) >= 2 else None
        models: dict[str, MobilityModel] = {}
        for plan in plans:
            if len(plan) == 2:
                vehicle_id, position = plan  # type: ignore[misc]
                models[vehicle_id] = StaticMobility(position)
            else:
                vehicle_id, times, arcs = plan  # type: ignore[misc]
                assert track is not None
                models[vehicle_id] = TraceMobility(track, times, arcs)
        return models
