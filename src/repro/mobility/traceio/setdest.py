"""ns-2 ``setdest`` movement files — parser and writer.

The classic ad-hoc-mobility format (CMU ``setdest`` tool, consumed by
ns-2 Tcl scenarios)::

    $node_(0) set X_ 150.0
    $node_(0) set Y_ 93.98
    $node_(0) set Z_ 0.0
    $ns_ at 2.50 "$node_(0) setdest 250.0 93.98 20.0"

A node idles at its initial ``X_``/``Y_`` position until a ``setdest``
command fires, then moves toward the destination in a straight line at
the given speed, idles on arrival, and so on.  The parser *reconstructs
the waypoints* this implies: one sample at t = 0 (the initial
position), one at each command instant (where the node actually is —
a command may preempt an unfinished leg), and one at each arrival.
``Z_`` lines are accepted and ignored (this substrate is 2-D).

The writer emits one ``setdest`` command per trace segment with the
speed that covers the segment in its time span, so write → parse
round-trips up to float division (``distance / (distance / dt)``) —
the round-trip tests compare with tolerances, unlike the exact CSV and
SUMO round-trips.
"""

from __future__ import annotations

import math
import re

from repro.errors import TraceFormatError
from repro.mobility.traceio.traceset import TraceSet, VehicleTrace, unit_scale

_INITIAL_RE = re.compile(
    r'^\$node_\((?P<node>[^)]+)\)\s+set\s+(?P<axis>[XYZ])_?\s+(?P<value>\S+)$'
)
_SETDEST_RE = re.compile(
    r'^\$ns_?\s+at\s+(?P<time>\S+)\s+'
    r'"\$node_\((?P<node>[^)]+)\)\s+setdest\s+'
    r'(?P<x>\S+)\s+(?P<y>\S+)\s+(?P<speed>\S+)"$'
)


def parse_setdest(source, *, unit: str = "m") -> TraceSet:
    """Parse ns-2 ``setdest`` text (path, file object, or string)."""
    scale = unit_scale(unit)
    lines = _read_lines(source)
    initial: dict[str, dict[str, float]] = {}
    commands: dict[str, list[tuple[float, float, float, float]]] = {}
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        match = _INITIAL_RE.match(stripped)
        if match:
            value = _number(match["value"], number, "coordinate")
            initial.setdefault(match["node"], {})[match["axis"]] = value * scale
            continue
        match = _SETDEST_RE.match(stripped)
        if match:
            time = _number(match["time"], number, "command time")
            speed = _number(match["speed"], number, "speed") * scale
            if time < 0.0:
                raise TraceFormatError(
                    f"setdest line {number}: negative command time {time!r}"
                )
            if speed <= 0.0:
                raise TraceFormatError(
                    f"setdest line {number}: speed must be positive, got {speed!r}"
                )
            commands.setdefault(match["node"], []).append(
                (
                    time,
                    _number(match["x"], number, "x") * scale,
                    _number(match["y"], number, "y") * scale,
                    speed,
                )
            )
            continue
        raise TraceFormatError(
            f"setdest line {number} is not an initial-position or "
            f"setdest command: {stripped!r}"
        )
    if not initial and not commands:
        raise TraceFormatError("setdest input contains no movement lines")
    for node in commands:
        if node not in initial:
            raise TraceFormatError(
                f"node {node!r} has setdest commands but no initial "
                f"$node_({node}) set X_/Y_ position"
            )
    traces = []
    for node, axes in sorted(initial.items()):
        if "X" not in axes or "Y" not in axes:
            raise TraceFormatError(
                f"node {node!r} is missing an initial "
                f"{'X' if 'X' not in axes else 'Y'}_ line"
            )
        traces.append(
            _reconstruct(node, axes["X"], axes["Y"], sorted(commands.get(node, [])))
        )
    return TraceSet(traces)


def _reconstruct(
    node: str,
    x0: float,
    y0: float,
    commands: list[tuple[float, float, float, float]],
) -> VehicleTrace:
    """Waypoints implied by a node's initial position and command list."""
    samples: list[tuple[float, float, float]] = [(0.0, x0, y0)]
    x, y = x0, y0
    # The leg in flight: (start_t, start_x, start_y, dest_x, dest_y, arrival_t)
    leg: tuple[float, float, float, float, float, float] | None = None
    for time, dest_x, dest_y, speed in commands:
        if leg is not None:
            x, y = _leg_position(leg, time)
            if time < leg[5]:
                # Preempted mid-flight: record where the node turned.
                samples.append((time, x, y))
            else:
                samples.append((leg[5], leg[3], leg[4]))
                x, y = leg[3], leg[4]
                if time > leg[5]:
                    samples.append((time, x, y))
        elif time > 0.0:
            samples.append((time, x, y))
        distance = math.hypot(dest_x - x, dest_y - y)
        arrival = time + distance / speed
        leg = (time, x, y, dest_x, dest_y, arrival)
    if leg is not None and leg[5] > leg[0]:
        samples.append((leg[5], leg[3], leg[4]))
    return VehicleTrace.from_samples(node, samples)


def _leg_position(
    leg: tuple[float, float, float, float, float, float], time: float
) -> tuple[float, float]:
    start_t, start_x, start_y, dest_x, dest_y, arrival = leg
    if time >= arrival:
        return dest_x, dest_y
    span = arrival - start_t
    frac = (time - start_t) / span if span > 0.0 else 1.0
    return (
        start_x + (dest_x - start_x) * frac,
        start_y + (dest_y - start_y) * frac,
    )


def write_setdest(traces: TraceSet, path) -> None:
    """Write *traces* as ns-2 ``setdest`` commands (see module notes).

    Command times are the trace's absolute times: the format anchors
    every node's initial position at t = 0, so rebase the set
    (:meth:`TraceSet.rebased`) before writing a recording that starts
    at an offset — negative command times are rejected on parse.
    """
    out: list[str] = []
    for trace in traces:
        node = trace.vehicle_id
        out.append(f"$node_({node}) set X_ {trace.xs[0]!r}")
        out.append(f"$node_({node}) set Y_ {trace.ys[0]!r}")
        out.append(f"$node_({node}) set Z_ 0.0")
        for i in range(1, len(trace.times)):
            dt = trace.times[i] - trace.times[i - 1]
            distance = math.hypot(
                trace.xs[i] - trace.xs[i - 1], trace.ys[i] - trace.ys[i - 1]
            )
            if distance == 0.0:
                continue  # a dwell: the node simply idles until the next leg
            speed = distance / dt
            out.append(
                f'$ns_ at {trace.times[i - 1]!r} '
                f'"$node_({node}) setdest {trace.xs[i]!r} {trace.ys[i]!r} '
                f'{speed!r}"'
            )
    text = "\n".join(out) + "\n"
    if hasattr(path, "write"):
        path.write(text)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)


def _number(text: str, line: int, what: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise TraceFormatError(
            f"setdest line {line}: {what} is not a number: {text!r}"
        ) from None


def _read_lines(source) -> list[str]:
    if hasattr(source, "read"):
        return source.read().splitlines()
    text = str(source)
    if "\n" in text or text.strip().startswith("$"):
        return text.splitlines()
    try:
        with open(text, "r", encoding="utf-8") as handle:
            return handle.read().splitlines()
    except OSError as exc:
        raise TraceFormatError(f"cannot read setdest file: {exc}") from None
