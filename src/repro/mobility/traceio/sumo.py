"""SUMO floating-car-data (FCD) XML — parser and writer.

The `SUMO fcd-export <https://sumo.dlr.de/docs/Simulation/Output/FCDOutput.html>`_
format groups samples by timestep::

    <fcd-export>
      <timestep time="0.00">
        <vehicle id="veh0" x="12.50" y="4.80" speed="13.9" angle="90"/>
      </timestep>
      ...
    </fcd-export>

Only ``id`` / ``x`` / ``y`` (and the timestep ``time``) are read; SUMO's
extra attributes (speed, angle, lane, …) are ignored on input and not
emitted on output.  Any element inside a timestep that carries the three
attributes is accepted — SUMO writes ``<person>`` elements in the same
shape.  Coordinates are converted to metres via the ``unit`` argument
(SUMO itself always writes metres; the knob exists for foreign exports).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from collections import defaultdict

from repro.errors import TraceFormatError
from repro.mobility.traceio.traceset import TraceSet, VehicleTrace, unit_scale


def parse_sumo_fcd(path, *, unit: str = "m") -> TraceSet:
    """Parse a SUMO FCD XML file (or path) into a :class:`TraceSet`."""
    scale = unit_scale(unit)
    try:
        tree = ET.parse(path)
    except ET.ParseError as exc:
        raise TraceFormatError(f"malformed SUMO FCD XML: {exc}") from None
    except OSError as exc:
        raise TraceFormatError(f"cannot read SUMO FCD file: {exc}") from None
    root = tree.getroot()
    samples: dict[str, list[tuple[float, float, float]]] = defaultdict(list)
    for timestep in root.iter("timestep"):
        raw_time = timestep.get("time")
        if raw_time is None:
            raise TraceFormatError("SUMO FCD timestep without a time attribute")
        time = _number(raw_time, "timestep time")
        for element in timestep:
            vehicle_id = element.get("id")
            if vehicle_id is None:
                raise TraceFormatError(
                    f"SUMO FCD element <{element.tag}> at t={raw_time} "
                    f"has no id attribute"
                )
            x = element.get("x")
            y = element.get("y")
            if x is None or y is None:
                raise TraceFormatError(
                    f"SUMO FCD vehicle {vehicle_id!r} at t={raw_time} "
                    f"is missing x/y"
                )
            samples[vehicle_id].append(
                (
                    time,
                    _number(x, f"x of {vehicle_id!r}") * scale,
                    _number(y, f"y of {vehicle_id!r}") * scale,
                )
            )
    if not samples:
        raise TraceFormatError("SUMO FCD file contains no vehicle samples")
    return TraceSet(
        VehicleTrace.from_samples(vid, rows) for vid, rows in samples.items()
    )


def write_sumo_fcd(traces: TraceSet, path) -> None:
    """Write *traces* as SUMO FCD XML.

    Floats are emitted with ``repr`` (shortest round-tripping form), so
    parse → write → parse is bit-exact — the property the format
    round-trip tests pin.
    """
    by_time: dict[float, list[tuple[str, float, float]]] = defaultdict(list)
    for trace in traces:
        for t, x, y in zip(trace.times, trace.xs, trace.ys):
            by_time[t].append((trace.vehicle_id, x, y))
    root = ET.Element("fcd-export")
    for time in sorted(by_time):
        timestep = ET.SubElement(root, "timestep", {"time": repr(time)})
        for vehicle_id, x, y in sorted(by_time[time]):
            ET.SubElement(
                timestep,
                "vehicle",
                {"id": vehicle_id, "x": repr(x), "y": repr(y)},
            )
    ET.indent(root)
    text = ET.tostring(root, encoding="unicode", xml_declaration=True) + "\n"
    if hasattr(path, "write"):
        path.write(text)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)


def _number(text: str, what: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise TraceFormatError(f"SUMO FCD {what} is not a number: {text!r}") from None
