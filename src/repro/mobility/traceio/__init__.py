"""Trace-driven mobility: real recordings as first-class workloads.

Every published vehicular-mobility dataset comes in one of a handful of
shapes; this package parses the common three and normalizes all of them
into one :class:`TraceSet` (per-vehicle timestamped waypoints with
validation, resampling, cropping, and unit conversion) that the
``trace`` scenario turns into simulator mobility models:

* :mod:`repro.mobility.traceio.sumo` — SUMO floating-car-data XML;
* :mod:`repro.mobility.traceio.setdest` — ns-2 ``setdest`` movement files;
* :mod:`repro.mobility.traceio.tabular` — timestamped CSV;
* :mod:`repro.mobility.traceio.synth` — a deterministic synthetic
  generator so tests/CI/benchmarks need no external files;
* :mod:`repro.mobility.traceio.traceset` — the shared model and the
  bridge onto :class:`~repro.mobility.base.TraceMobility` (including
  the shared scene track that feeds the batch position path).

:func:`load_traces` is the front door: it dispatches on an explicit
format name or sniffs the file, and applies unit conversion uniformly.
"""

from __future__ import annotations

from repro.errors import TraceFormatError
from repro.mobility.traceio.setdest import parse_setdest, write_setdest
from repro.mobility.traceio.sumo import parse_sumo_fcd, write_sumo_fcd
from repro.mobility.traceio.synth import synth_traces
from repro.mobility.traceio.tabular import parse_csv_trace, write_csv_trace
from repro.mobility.traceio.traceset import (
    UNIT_SCALES,
    TraceSet,
    VehicleTrace,
    unit_scale,
)

#: Format name → (parser, writer).  ``load_traces`` / ``dump_traces``
#: dispatch through this table; ``auto`` sniffs (see ``detect_format``).
FORMATS = {
    "sumo-fcd": (parse_sumo_fcd, write_sumo_fcd),
    "ns2": (parse_setdest, write_setdest),
    "csv": (parse_csv_trace, write_csv_trace),
}


def detect_format(path) -> str:
    """Sniff a trace file's format from its first meaningful line.

    ``<`` opens XML (SUMO FCD); ``$`` opens a Tcl ``$node_``/``$ns_``
    line (ns-2 setdest); anything else is taken as CSV.  Extension hints
    (``.xml`` / ``.tcl`` / ``.csv``) are not trusted: recordings in the
    wild are routinely misnamed.
    """
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            for line in handle:
                stripped = line.strip()
                if not stripped or stripped.startswith("#"):
                    continue
                if stripped.startswith("<"):
                    return "sumo-fcd"
                if stripped.startswith("$"):
                    return "ns2"
                return "csv"
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace file: {exc}") from None
    raise TraceFormatError(f"trace file {path!r} is empty")


def load_traces(path, *, fmt: str = "auto", unit: str = "m") -> TraceSet:
    """Parse *path* into a :class:`TraceSet`.

    ``fmt`` is one of :data:`FORMATS` (or ``"auto"`` to sniff); ``unit``
    converts coordinates to metres on the way in (see
    :data:`~repro.mobility.traceio.traceset.UNIT_SCALES`).
    """
    name = detect_format(path) if fmt == "auto" else fmt
    if name not in FORMATS:
        raise TraceFormatError(
            f"unknown trace format {name!r}; known: auto, "
            f"{', '.join(sorted(FORMATS))}"
        )
    parser, _ = FORMATS[name]
    return parser(path, unit=unit)


def dump_traces(traces: TraceSet, path, *, fmt: str = "csv") -> None:
    """Write *traces* to *path* in ``fmt`` (always metres)."""
    if fmt not in FORMATS:
        raise TraceFormatError(
            f"unknown trace format {fmt!r}; known: {', '.join(sorted(FORMATS))}"
        )
    _, writer = FORMATS[fmt]
    writer(traces, path)


__all__ = [
    "FORMATS",
    "TraceSet",
    "UNIT_SCALES",
    "VehicleTrace",
    "detect_format",
    "dump_traces",
    "load_traces",
    "parse_csv_trace",
    "parse_setdest",
    "parse_sumo_fcd",
    "synth_traces",
    "unit_scale",
    "write_csv_trace",
    "write_setdest",
    "write_sumo_fcd",
]
