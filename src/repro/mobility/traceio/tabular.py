"""Timestamped-CSV traces — parser and writer.

The plain interchange shape: one sample per row, a header naming the
columns.  Column names are matched case-insensitively with the usual
aliases (``time``/``t``/``timestep``, ``vehicle``/``id``/``vehicle_id``/
``node``, ``x``, ``y``); extra columns (speed, lane, …) are ignored.
Comment lines starting with ``#`` and blank lines are skipped.  The
writer emits ``time,vehicle,x,y`` with ``repr`` floats, so CSV
round-trips are bit-exact.
"""

from __future__ import annotations

import csv
import io

from repro.errors import TraceFormatError
from repro.mobility.traceio.traceset import TraceSet, VehicleTrace, unit_scale

_TIME_NAMES = ("time", "t", "timestep", "time_s")
_VEHICLE_NAMES = ("vehicle", "id", "vehicle_id", "veh", "node")
_X_NAMES = ("x", "x_m", "pos_x")
_Y_NAMES = ("y", "y_m", "pos_y")


def parse_csv_trace(source, *, unit: str = "m") -> TraceSet:
    """Parse timestamped CSV (path, file object, or string)."""
    scale = unit_scale(unit)
    handle, owned = _open(source)
    try:
        reader = csv.reader(handle)
        header = None
        columns: dict[str, int] = {}
        samples: dict[str, list[tuple[float, float, float]]] = {}
        for number, row in enumerate(reader, start=1):
            if not row or (row[0].lstrip().startswith("#")):
                continue
            if header is None:
                header = [cell.strip().lower() for cell in row]
                columns = {
                    "time": _find_column(header, _TIME_NAMES, "time"),
                    "vehicle": _find_column(header, _VEHICLE_NAMES, "vehicle"),
                    "x": _find_column(header, _X_NAMES, "x"),
                    "y": _find_column(header, _Y_NAMES, "y"),
                }
                continue
            if len(row) < len(header):
                raise TraceFormatError(
                    f"CSV row {number} has {len(row)} fields, "
                    f"header has {len(header)}"
                )
            vehicle_id = row[columns["vehicle"]].strip()
            if not vehicle_id:
                raise TraceFormatError(f"CSV row {number} has an empty vehicle id")
            samples.setdefault(vehicle_id, []).append(
                (
                    _number(row[columns["time"]], number, "time"),
                    _number(row[columns["x"]], number, "x") * scale,
                    _number(row[columns["y"]], number, "y") * scale,
                )
            )
        if header is None:
            raise TraceFormatError("CSV trace has no header row")
        if not samples:
            raise TraceFormatError("CSV trace has a header but no sample rows")
        return TraceSet(
            VehicleTrace.from_samples(vid, rows) for vid, rows in samples.items()
        )
    finally:
        if owned:
            handle.close()


def write_csv_trace(traces: TraceSet, path) -> None:
    """Write *traces* as ``time,vehicle,x,y`` rows, time-major order."""
    rows: list[tuple[float, str, float, float]] = []
    for trace in traces:
        for t, x, y in zip(trace.times, trace.xs, trace.ys):
            rows.append((t, trace.vehicle_id, x, y))
    rows.sort(key=lambda r: (r[0], r[1]))
    lines = ["time,vehicle,x,y"]
    for t, vehicle_id, x, y in rows:
        lines.append(f"{t!r},{vehicle_id},{x!r},{y!r}")
    text = "\n".join(lines) + "\n"
    if hasattr(path, "write"):
        path.write(text)
    else:
        with open(path, "w", encoding="utf-8", newline="") as handle:
            handle.write(text)


def _open(source):
    """(text handle, whether we own it) for a path, file object, or string."""
    if hasattr(source, "read"):
        return source, False
    text = str(source)
    if "\n" in text or not text.strip():
        return io.StringIO(text), True
    try:
        return open(text, "r", encoding="utf-8", newline=""), True
    except OSError as exc:
        raise TraceFormatError(f"cannot read CSV trace: {exc}") from None


def _find_column(header: list[str], names: tuple[str, ...], what: str) -> int:
    for name in names:
        if name in header:
            return header.index(name)
    raise TraceFormatError(
        f"CSV trace header {header!r} has no {what} column "
        f"(accepted names: {', '.join(names)})"
    )


def _number(text: str, row: int, what: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise TraceFormatError(
            f"CSV row {row}: {what} is not a number: {text.strip()!r}"
        ) from None
