"""Deterministic synthetic traces — the no-external-files workload.

Tests, CI, benchmarks, and the ``trace`` scenario's default
configuration all need realistic-looking trace geometry without
shipping (or downloading) a real recording.  :func:`synth_traces`
generates one deterministically from a seed: a platoon-free stream of
vehicles entering a gently curving multi-lane road at staggered times,
each with its own cruise speed and slowly varying speed noise, sampled
on a fixed tick until it leaves the far end.  The result intentionally
has the irregularities real FCD exports show — vehicles appearing and
disappearing mid-recording, different per-vehicle time spans, curved
paths, non-constant speeds — which is exactly what the trace benchmarks
need to prove the batch kernel's speedup holds off the parametric
platoon geometry.

Determinism: the only randomness is ``numpy.random.default_rng(seed)``
consumed in a fixed order, so a (seed, parameters) pair always produces
the identical :class:`TraceSet` on every platform — the synthetic trace
is part of the experiment configuration, not of the per-round
stochastics (channel randomness still varies per round as usual).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import TraceFormatError
from repro.mobility.traceio.traceset import TraceSet, VehicleTrace


def synth_traces(
    *,
    vehicles: int = 8,
    duration_s: float = 120.0,
    tick_s: float = 1.0,
    seed: int = 97,
    road_length_m: float = 2000.0,
    mean_speed_ms: float = 20.0,
    speed_jitter: float = 0.15,
    entry_gap_s: float = 4.0,
    lanes: int = 2,
    lane_width_m: float = 3.5,
    curve_amplitude_m: float = 30.0,
    curve_wavelength_m: float = 600.0,
) -> TraceSet:
    """One deterministic synthetic recording (see module notes).

    Vehicle ``veh<i>`` enters lane ``i % lanes`` at ``i · entry_gap_s``
    with cruise speed ``mean_speed_ms`` times a per-vehicle factor, and
    follows the lane's sinusoidal centreline until it passes
    ``road_length_m`` or the recording ends.
    """
    if vehicles < 1:
        raise TraceFormatError("synth needs at least one vehicle")
    if duration_s <= 0.0 or tick_s <= 0.0:
        raise TraceFormatError("synth duration and tick must be positive")
    if road_length_m <= 0.0 or mean_speed_ms <= 0.0:
        raise TraceFormatError("synth road length and speed must be positive")
    if not 0.0 <= speed_jitter < 1.0:
        raise TraceFormatError("speed_jitter must be in [0, 1)")
    if lanes < 1:
        raise TraceFormatError("synth needs at least one lane")
    rng = np.random.default_rng(seed)
    ticks = int(math.floor(duration_s / tick_s)) + 1
    traces = []
    for index in range(vehicles):
        cruise = mean_speed_ms * float(rng.normal(1.0, 0.08))
        cruise = max(cruise, 0.25 * mean_speed_ms)
        # Slowly varying multiplicative speed noise: an AR(1) chain in
        # the jitter band, one step per tick (drawn for every tick of
        # the recording so vehicle count/order fixes the stream layout).
        noise = rng.normal(0.0, 1.0, size=ticks)
        entry = index * entry_gap_s
        lane = index % lanes
        samples: list[tuple[float, float, float]] = []
        s = 0.0
        level = 0.0
        for k in range(ticks):
            t = k * tick_s
            level = 0.8 * level + 0.2 * float(noise[k])
            if t < entry:
                continue
            if s > road_length_m:
                break
            x = s
            y = (
                lane * lane_width_m
                + curve_amplitude_m
                * math.sin(2.0 * math.pi * x / curve_wavelength_m)
            )
            samples.append((t, x, y))
            speed = cruise * (1.0 + speed_jitter * math.tanh(level))
            s += speed * tick_s
        if samples:
            traces.append(VehicleTrace.from_samples(f"veh{index}", samples))
    if not traces:
        raise TraceFormatError(
            "synth produced no samples; lengthen duration_s or shrink entry_gap_s"
        )
    return TraceSet(traces)
