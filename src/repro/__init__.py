"""Reproduction of *A Cooperative ARQ for Delay-Tolerant Vehicular
Networks* (Morillo-Pozo, Trullols, Barceló, García-Vidal — ICDCS
Workshops 2008).

Quick start::

    from repro import paper_testbed_config, run_urban_experiment
    from repro.analysis import compute_table1, render_table1

    result = run_urban_experiment(paper_testbed_config(rounds=5))
    print(render_table1(compute_table1(result.matrices_by_round())))

Package map
-----------
``repro.core``
    The paper's contribution: the Cooperative-ARQ vehicle protocol and
    its extensions (batched requests, cooperator selection, AP
    retransmission policies).
``repro.sim`` / ``repro.geom`` / ``repro.mobility`` / ``repro.radio`` /
``repro.mac`` / ``repro.net``
    The substrates: discrete-event kernel, geometry, IDM platoon
    mobility, statistical 802.11 PHY, CSMA medium, nodes/applications.
``repro.baselines``
    No-cooperation, in-coverage ARQ, and epidemic-exchange comparisons.
``repro.trace`` / ``repro.analysis``
    Capture and the post-processing that regenerates Table 1 and
    Figures 3–8.
``repro.scenarios``
    The scenario plugin registry: every runnable scenario (urban,
    highway, multi-AP, bidirectional, …) as one registration bundling
    config, wiring, row collection and aggregation, with the protocol
    (C-ARQ or any baseline) a sweepable ``mode`` field.
``repro.experiments``
    Compatibility fronts over the scenario plugins, the paper-testbed
    configuration, the sweeps, and the multi-round runner.
``repro.campaign``
    Campaign engine: declarative specs expanded into content-addressed
    tasks, executed in parallel against a resumable JSONL result store
    (the ``repro campaign`` CLI and every sweep run through it); all
    scenario dispatch goes through ``repro.scenarios``.
"""

from repro.core import CarqConfig, CarqProtocol, VehicleNode
from repro.experiments import (
    PAPER_TABLE1,
    UrbanScenarioConfig,
    paper_testbed_config,
    run_urban_experiment,
)
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "CarqConfig",
    "CarqProtocol",
    "PAPER_TABLE1",
    "Simulator",
    "UrbanScenarioConfig",
    "VehicleNode",
    "__version__",
    "paper_testbed_config",
    "run_urban_experiment",
]
