"""Durable file-writing helpers: atomic replace for whole-file artifacts.

Append-only streams (the campaign result store and its sidecars) get
their durability from append+flush plus torn-tail-tolerant loading
(:mod:`repro.campaign.store`).  Whole-file artifacts — campaign spec
JSON, ``BENCH_kernel.json``, exported trace documents, report text —
have no such recovery story: an interrupt mid-``write()`` leaves a
half-written file that the next consumer (``check_bench_regression.py``,
a spec loader, a trace viewer) chokes on.  These helpers close that
hole: the content lands in a temporary file in the *same directory*
(``os.replace`` is only atomic within one filesystem), is flushed and
fsynced, and then atomically renamed over the destination — so any
reader ever sees either the old complete file or the new complete file,
never a torn one.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from typing import Any


def atomic_write_text(path, text: str, *, encoding: str = "utf-8") -> None:
    """Write *text* to *path* atomically (temp file + ``os.replace``).

    An interrupt at any point leaves either the previous file content or
    the new one — never a partial write.  The temporary file is cleaned
    up on failure.
    """
    target = os.fspath(path)
    parent = os.path.dirname(target)
    if parent:
        os.makedirs(parent, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=parent or ".", prefix=f".{os.path.basename(target)}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def atomic_write_json(
    path,
    payload: Any,
    *,
    indent: int | None = 2,
    sort_keys: bool = True,
) -> None:
    """Serialise *payload* and write it atomically with a trailing newline."""
    atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    )
