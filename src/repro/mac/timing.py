"""802.11 MAC/PHY timing constants and airtime computation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MacError
from repro.radio.modulation import PhyScheme, WifiRate
from repro.units import MICROSECOND, bytes_to_bits


@dataclass(slots=True, frozen=True)
class MacTiming:
    """Timing parameters of one PHY family.

    Attributes
    ----------
    slot_s:
        Back-off slot duration.
    sifs_s:
        Short inter-frame space.
    preamble_s:
        PLCP preamble + header time prepended to every frame.
    cw_min / cw_max:
        Contention-window bounds (slots).
    """

    slot_s: float
    sifs_s: float
    preamble_s: float
    cw_min: int = 31
    cw_max: int = 1023

    @property
    def difs_s(self) -> float:
        """DCF inter-frame space: SIFS + 2 slots."""
        return self.sifs_s + 2.0 * self.slot_s


#: 802.11b DSSS timing (long preamble, as MadWiFi used at 1-2 Mb/s).
DSSS_TIMING = MacTiming(
    slot_s=20 * MICROSECOND,
    sifs_s=10 * MICROSECOND,
    preamble_s=192 * MICROSECOND,
)

#: 802.11g OFDM timing.
OFDM_TIMING = MacTiming(
    slot_s=9 * MICROSECOND,
    sifs_s=16 * MICROSECOND,
    preamble_s=20 * MICROSECOND,
    cw_min=15,
)


def timing_for(rate: WifiRate) -> MacTiming:
    """The timing set matching a rate's PHY family."""
    if rate.scheme is PhyScheme.DSSS:
        return DSSS_TIMING
    if rate.scheme is PhyScheme.OFDM:
        return OFDM_TIMING
    raise MacError(f"no timing defined for scheme {rate.scheme!r}")


def frame_airtime(size_bytes: int, rate: WifiRate) -> float:
    """Total on-air duration of a frame: preamble + serialisation.

    Raises
    ------
    MacError
        If *size_bytes* is not positive.
    """
    if size_bytes <= 0:
        raise MacError(f"frame size must be positive, got {size_bytes!r}")
    timing = timing_for(rate)
    return timing.preamble_s + bytes_to_bits(size_bytes) / rate.bitrate_bps
