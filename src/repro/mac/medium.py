"""The shared wireless medium.

One :class:`Medium` instance connects all interfaces of a scenario.  For
every transmission it samples the channel toward attached receivers,
tracks concurrent arrivals for interference/SINR, enforces half-duplex
radios, and reports outcomes to an optional trace collector.

Reception pipeline per (frame, receiver):

1. bound the receiver's best-case mean power deterministically (path loss
   at current positions plus the configured shadowing headroom) and cull
   the link if it can never clear ``noise_floor - sensitivity_margin`` —
   no RNG is consumed, and because all stochastic channel draws are keyed
   per ``(link, transmission)``, skipping a link cannot perturb any other
   link's realisation;
2. sample path loss + shadowing + fading → received power;
3. drop silently if the mean power is far below the noise floor (the
   receiver's hardware would never sync to the preamble — real sniffers
   record nothing there either);
4. accumulate interference from temporally overlapping arrivals;
5. at frame end, draw delivery from the SINR-dependent frame error rate;
6. a receiver that transmitted during any part of the arrival loses the
   frame outright (half-duplex).

The candidate receivers themselves come from a lazily refreshed spatial
grid (cell size = the maximum reachable radius implied by the path-loss
model), so a broadcast costs O(reachable receivers), not O(attached
interfaces).  ``fast_path=False`` forces the exhaustive path — every
attached interface is bounded *and sampled* — which must produce
bit-identical outcomes (the A/B pin in
``tests/scenarios/test_fast_path_ab.py``).
"""

from __future__ import annotations

import enum
import math
import typing
from dataclasses import dataclass

from repro.errors import MacError
from repro.mac.frames import Frame
from repro.mac.timing import frame_airtime
from repro.radio.channel import Channel, LinkSample
from repro.radio.modulation import WifiRate
from repro.sim import Priority, Simulator
from repro.units import dbm_sum

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.geom import Vec2
    from repro.mac.interface import NetworkInterface


class LossCause(enum.Enum):
    """Why a frame did or did not make it to a given receiver."""

    DELIVERED = "delivered"
    CHANNEL = "channel"            # SNR-driven corruption, no interference present
    INTERFERENCE = "interference"  # corrupted with concurrent arrivals on air
    HALF_DUPLEX = "half-duplex"    # receiver was transmitting
    BELOW_SENSITIVITY = "below-sensitivity"


@dataclass(frozen=True)
class RxInfo:
    """Receive-side metadata handed to the interface with each frame."""

    time: float
    rx_power_dbm: float
    snr_db: float


class _Arrival:
    """Book-keeping for one frame in flight toward one receiver."""

    __slots__ = (
        "frame", "rate", "sample", "start", "end",
        "interferers_dbm", "half_duplex",
    )

    def __init__(
        self,
        frame: Frame,
        rate: WifiRate,
        sample: LinkSample,
        start: float,
        end: float,
    ) -> None:
        self.frame = frame
        self.rate = rate
        self.sample = sample
        self.start = start
        self.end = end
        self.interferers_dbm: list[float] = []
        self.half_duplex = False


class _NeighborIndex:
    """Grid buckets of interface positions, refreshed lazily.

    Built from a snapshot of positions; queries widen their radius by the
    maximum distance any node may have moved since the snapshot
    (``max_speed_ms · age``), so the candidate set is always a superset
    of the truly reachable receivers as long as no node outruns the
    configured speed bound.
    """

    __slots__ = ("cell_m", "built_at", "version", "_buckets")

    def __init__(
        self,
        interfaces: list["NetworkInterface"],
        cell_m: float,
        now: float,
        version: int,
    ) -> None:
        self.cell_m = cell_m
        self.built_at = now
        self.version = version
        buckets: dict[tuple[int, int], list["NetworkInterface"]] = {}
        inv = 1.0 / cell_m
        for iface in interfaces:
            pos = iface.position()
            key = (math.floor(pos.x * inv), math.floor(pos.y * inv))
            buckets.setdefault(key, []).append(iface)
        self._buckets = buckets

    def query(self, pos: "Vec2", radius: float) -> list["NetworkInterface"]:
        """Every interface bucketed within *radius* of *pos* (superset)."""
        inv = 1.0 / self.cell_m
        x_lo = math.floor((pos.x - radius) * inv)
        x_hi = math.floor((pos.x + radius) * inv)
        y_lo = math.floor((pos.y - radius) * inv)
        y_hi = math.floor((pos.y + radius) * inv)
        buckets = self._buckets
        found: list["NetworkInterface"] = []
        if (x_hi - x_lo + 1) * (y_hi - y_lo + 1) >= len(buckets):
            # Query box spans more cells than exist: walking the occupied
            # buckets (and box-testing each) is cheaper than probing the box.
            for (ix, iy), bucket in buckets.items():
                if x_lo <= ix <= x_hi and y_lo <= iy <= y_hi:
                    found.extend(bucket)
            return found
        for ix in range(x_lo, x_hi + 1):
            for iy in range(y_lo, y_hi + 1):
                bucket = buckets.get((ix, iy))
                if bucket is not None:
                    found.extend(bucket)
        return found


class Medium:
    """Connects interfaces through a :class:`~repro.radio.channel.Channel`.

    Parameters
    ----------
    sim:
        The simulator that provides the clock and event queue.
    channel:
        Propagation model shared by all links.
    trace:
        Optional collector with ``on_tx(...)`` / ``on_rx(...)`` methods
        (see :mod:`repro.trace.capture`).
    sensitivity_margin_db:
        Arrivals whose mean power is more than this below the receiver
        noise floor are discarded without bookkeeping.
    fast_path:
        When true (default), receivers are found through the spatial
        neighbor index and hopeless links are culled before sampling.
        When false, every attached interface is bounded and sampled — the
        exhaustive A/B reference, bit-identical to the fast path.
    cull_headroom_db:
        Shadowing boost granted to a link before it is declared
        unreachable: a receiver is culled when ``tx_power + rx_gain -
        pathloss - obstruction + headroom`` is below its sensitivity
        threshold.  The bound is part of the reception model — both the
        fast and the exhaustive path apply it, which is what makes them
        bit-identical.  ``None`` derives the provable worst case from
        the channel's clamped shadowing models (±4σ: exact pre-fast-path
        physics, but a much wider radius).  The default 12 dB is a
        fidelity/throughput trade-off: links whose deterministic mean
        sits in the 12 dB band *below* the sensitivity threshold need a
        shadowing boost exceeding the headroom to matter, which for a
        composite σ of ~7 dB happens on a few percent of edge-of-range
        frames — all at least ``sensitivity_margin_db`` under the noise
        floor, so they can never deliver and are lost only as potential
        weak interferers and trace rows.  Scenarios that need the exact
        tail set the headroom knob (``RadioEnvironment.cull_headroom_db``)
        higher or pass ``None``.
    neighbor_refresh_s:
        Maximum age of the neighbor index snapshot before it is rebuilt.
    max_speed_ms:
        Upper bound on node speed, used to widen stale-index queries so a
        moving receiver can never be missed.  Raise it for scenarios with
        faster (or teleporting) mobility.
    neighbor_index_min_nodes:
        Below this interface count the index is skipped (a linear scan of
        so few nodes is cheaper than grid bookkeeping).
    """

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        *,
        trace: typing.Any | None = None,
        sensitivity_margin_db: float = 10.0,
        fast_path: bool = True,
        cull_headroom_db: float | None = 12.0,
        neighbor_refresh_s: float = 1.0,
        max_speed_ms: float = 100.0,
        neighbor_index_min_nodes: int = 16,
    ) -> None:
        self._sim = sim
        self._channel = channel
        self._trace = trace
        self._sensitivity_margin_db = sensitivity_margin_db
        self._fast_path = fast_path
        if cull_headroom_db is None:
            cull_headroom_db = channel.shadow_headroom_db()
        self._cull_headroom_db = cull_headroom_db
        self._neighbor_refresh_s = neighbor_refresh_s
        self._max_speed_ms = max_speed_ms
        self._neighbor_index_min_nodes = neighbor_index_min_nodes
        self._interfaces: list[NetworkInterface] = []
        self._ongoing: dict[NetworkInterface, list[_Arrival]] = {}
        # Attach-order rank and sensitivity threshold per interface, cached
        # off the hot path (thresholds are static per RadioConfig).
        self._attach_rank: dict[NetworkInterface, int] = {}
        self._rx_threshold_dbm: dict[NetworkInterface, float] = {}
        self._tx_seq = 0
        self._index: _NeighborIndex | None = None
        self._index_version = 0
        self._reach_radius_m: float | None = None
        # Per-transmit-power query radius (radios share a handful of
        # distinct powers, so this stays tiny).
        self._tx_radius_m: dict[float, float] = {}

    @property
    def channel(self) -> Channel:
        """The propagation model in use."""
        return self._channel

    @property
    def trace(self) -> typing.Any | None:
        """The attached trace collector, if any."""
        return self._trace

    @property
    def fast_path(self) -> bool:
        """Whether reception uses the culling fast path."""
        return self._fast_path

    @property
    def cull_headroom_db(self) -> float:
        """Shadowing headroom granted by the reachability bound."""
        return self._cull_headroom_db

    def set_trace(self, trace: typing.Any | None) -> None:
        """Install or replace the trace collector."""
        self._trace = trace

    def attach(self, iface: "NetworkInterface") -> None:
        """Register an interface.  Each interface joins exactly one medium."""
        if iface in self._ongoing:
            raise MacError(f"interface {iface.name!r} already attached")
        self._attach_rank[iface] = len(self._interfaces)
        self._interfaces.append(iface)
        self._ongoing[iface] = []
        self._rx_threshold_dbm[iface] = (
            iface.config.noise_floor_dbm - self._sensitivity_margin_db
        )
        self.invalidate_neighbors()

    def invalidate_neighbors(self) -> None:
        """Force a neighbor-index rebuild (topology or mobility jump)."""
        self._index_version += 1
        self._reach_radius_m = None
        self._tx_radius_m.clear()

    # -- candidate discovery --------------------------------------------------

    def _radius_for_loss_budget(self, tx_power_dbm: float) -> float:
        """Radius beyond which *tx_power* cannot pass any receiver's bound."""
        if not self._interfaces:
            return math.inf
        best = tx_power_dbm + max(
            iface.config.antenna_gain_db for iface in self._interfaces
        )
        min_threshold = min(self._rx_threshold_dbm.values())
        max_loss = best - min_threshold + self._cull_headroom_db
        if not math.isfinite(max_loss):
            return math.inf
        return self._channel.max_range_m(max_loss)

    def _candidates(self, tx_iface: "NetworkInterface", tx_pos: "Vec2") -> list:
        """Receivers that could possibly pass the reachability bound.

        Returns a superset of the bound-passing set, in attach order (the
        per-pair bound in :meth:`transmit` does the exact cull).
        """
        interfaces = self._interfaces
        if (
            not self._fast_path
            or len(interfaces) < self._neighbor_index_min_nodes
        ):
            return interfaces
        # Grid cells are a quarter of the strongest radio's reach (a
        # bucket-count / query-precision sweet spot); queries use the
        # transmitter's own (possibly much shorter) reach.
        cell = self._reach_radius_m
        if cell is None:
            cell = self._reach_radius_m = (
                self._radius_for_loss_budget(
                    max(iface.config.tx_power_dbm for iface in interfaces)
                )
                / 4.0
            )
        if not math.isfinite(cell):
            return interfaces
        tx_power = tx_iface.config.tx_power_dbm
        radius = self._tx_radius_m.get(tx_power)
        if radius is None:
            radius = self._radius_for_loss_budget(tx_power)
            self._tx_radius_m[tx_power] = radius
        now = self._sim.now
        index = self._index
        if (
            index is None
            or index.version != self._index_version
            or now - index.built_at > self._neighbor_refresh_s
        ):
            index = self._index = _NeighborIndex(
                interfaces, cell, now, self._index_version
            )
        slack = self._max_speed_ms * (now - index.built_at)
        found = index.query(tx_pos, radius + slack)
        if len(found) >= len(interfaces):
            return interfaces
        rank = self._attach_rank
        found.sort(key=rank.__getitem__)
        return found

    # -- transmission ---------------------------------------------------------

    def transmit(self, tx_iface: "NetworkInterface", frame: Frame, rate: WifiRate) -> float:
        """Put *frame* on the air from *tx_iface*; returns the airtime.

        Called by the interface at the instant its back-off completed; the
        interface is responsible for marking itself as transmitting for the
        returned duration.
        """
        ongoing = self._ongoing
        if tx_iface not in ongoing:
            raise MacError(f"interface {tx_iface.name!r} not attached to this medium")
        now = self._sim.now
        airtime = frame_airtime(frame.size_bytes, rate)
        end = now + airtime
        tx_pos = tx_iface.position()
        self._tx_seq += 1
        tx_seq = self._tx_seq
        if self._trace is not None:
            self._trace.on_tx(now, tx_iface.node_id, frame, rate)

        # A station that starts transmitting kills anything it was receiving.
        for arrival in ongoing[tx_iface]:
            arrival.half_duplex = True

        channel = self._channel
        fast = self._fast_path
        headroom = self._cull_headroom_db
        tx_power = tx_iface.config.tx_power_dbm
        tx_id = tx_iface.node_id
        thresholds = self._rx_threshold_dbm
        finishing: list[tuple[NetworkInterface, _Arrival]] = []
        for rx_iface in self._candidates(tx_iface, tx_pos):
            if rx_iface is tx_iface:
                continue
            rx_gain = rx_iface.config.antenna_gain_db
            rx_pos = rx_iface.position()
            budget = channel.link_budget(tx_pos, rx_pos)
            threshold = thresholds[rx_iface]
            reachable = tx_power + rx_gain - budget[1] + headroom >= threshold
            if fast and not reachable:
                continue  # culled without consuming any stochastic draw
            sample = channel.sample(
                tx_id,
                rx_iface.node_id,
                tx_pos,
                rx_pos,
                tx_power,
                rx_gain,
                time=now,
                tx_seq=tx_seq,
                budget=budget,
            )
            if not reachable or sample.mean_rx_power_dbm < threshold:
                continue  # far out of range: the radio never syncs
            arrival = _Arrival(frame, rate, sample, now, end)
            # Mutual interference with everything already on the air here.
            for other in ongoing[rx_iface]:
                other.interferers_dbm.append(sample.rx_power_dbm)
                arrival.interferers_dbm.append(other.sample.rx_power_dbm)
            if rx_iface.transmitting:
                arrival.half_duplex = True
            ongoing[rx_iface].append(arrival)
            finishing.append((rx_iface, arrival))

        if finishing:
            # One frame-end event for the whole broadcast (the arrivals all
            # end at the same instant and carry consecutive ranks anyway).
            # URGENT so medium bookkeeping settles before normal callbacks
            # at the same instant observe the channel state.
            self._sim.schedule(
                airtime, self._finish_transmission, finishing, priority=Priority.URGENT
            )
        return airtime

    def _finish_transmission(
        self, finishing: list[tuple["NetworkInterface", _Arrival]]
    ) -> None:
        for rx_iface, arrival in finishing:
            self._finish_arrival(rx_iface, arrival)

    def _finish_arrival(self, rx_iface: "NetworkInterface", arrival: _Arrival) -> None:
        self._ongoing[rx_iface].remove(arrival)
        noise_floor = rx_iface.config.noise_floor_dbm
        if arrival.interferers_dbm:
            noise_plus_interference = dbm_sum(noise_floor, *arrival.interferers_dbm)
        else:
            noise_plus_interference = noise_floor
        snr_db = arrival.sample.rx_power_dbm - noise_plus_interference

        if arrival.half_duplex:
            cause = LossCause.HALF_DUPLEX
        elif (
            arrival.interferers_dbm
            and snr_db < rx_iface.config.capture_threshold_db
        ):
            # Same-code DSSS interference is not suppressed by processing
            # gain: without a capture margin over the interferers the frame
            # is destroyed (classic 802.11 capture model).
            cause = LossCause.INTERFERENCE
        elif self._channel.frame_delivered(
            arrival.sample,
            arrival.rate,
            arrival.frame,
            noise_plus_interference,
            rx_id=rx_iface.node_id,
        ):
            cause = LossCause.DELIVERED
        elif arrival.interferers_dbm:
            cause = LossCause.INTERFERENCE
        else:
            cause = LossCause.CHANNEL

        if self._trace is not None:
            self._trace.on_rx(
                self._sim.now, rx_iface.node_id, arrival.frame, cause, snr_db,
                arrival.sample.rx_power_dbm,
            )
        if cause is LossCause.DELIVERED:
            rx_iface.deliver(
                arrival.frame,
                RxInfo(self._sim.now, arrival.sample.rx_power_dbm, snr_db),
            )

    # -- carrier sense ----------------------------------------------------------

    def busy(self, iface: "NetworkInterface") -> bool:
        """Whether *iface* senses energy above its carrier-sense threshold.

        Concurrent arrivals add up in the detector: two frames each just
        below the threshold are sensed busy together, so the arrivals'
        mean powers are aggregated with :func:`~repro.units.dbm_sum`
        before the comparison.
        """
        if iface.transmitting:
            return True
        arrivals = self._ongoing[iface]
        if not arrivals:
            return False
        threshold = iface.config.carrier_sense_threshold_dbm
        if len(arrivals) == 1:
            return arrivals[0].sample.mean_rx_power_dbm >= threshold
        total = dbm_sum(*(arrival.sample.mean_rx_power_dbm for arrival in arrivals))
        return total >= threshold
