"""The shared wireless medium.

One :class:`Medium` instance connects all interfaces of a scenario.  For
every transmission it samples the channel toward every attached receiver,
tracks concurrent arrivals for interference/SINR, enforces half-duplex
radios, and reports outcomes to an optional trace collector.

Reception pipeline per (frame, receiver):

1. sample path loss + shadowing + fading → received power;
2. drop silently if the mean power is far below the noise floor (the
   receiver's hardware would never sync to the preamble — real sniffers
   record nothing there either);
3. accumulate interference from temporally overlapping arrivals;
4. at frame end, draw delivery from the SINR-dependent frame error rate;
5. a receiver that transmitted during any part of the arrival loses the
   frame outright (half-duplex).
"""

from __future__ import annotations

import enum
import typing
from dataclasses import dataclass

from repro.errors import MacError
from repro.mac.frames import Frame
from repro.mac.timing import frame_airtime
from repro.radio.channel import Channel, LinkSample
from repro.radio.modulation import WifiRate
from repro.sim import Priority, Simulator
from repro.units import dbm_sum

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.mac.interface import NetworkInterface


class LossCause(enum.Enum):
    """Why a frame did or did not make it to a given receiver."""

    DELIVERED = "delivered"
    CHANNEL = "channel"            # SNR-driven corruption, no interference present
    INTERFERENCE = "interference"  # corrupted with concurrent arrivals on air
    HALF_DUPLEX = "half-duplex"    # receiver was transmitting
    BELOW_SENSITIVITY = "below-sensitivity"


@dataclass(frozen=True)
class RxInfo:
    """Receive-side metadata handed to the interface with each frame."""

    time: float
    rx_power_dbm: float
    snr_db: float


class _Arrival:
    """Book-keeping for one frame in flight toward one receiver."""

    __slots__ = (
        "frame", "rate", "sample", "start", "end",
        "interferers_dbm", "half_duplex",
    )

    def __init__(
        self,
        frame: Frame,
        rate: WifiRate,
        sample: LinkSample,
        start: float,
        end: float,
    ) -> None:
        self.frame = frame
        self.rate = rate
        self.sample = sample
        self.start = start
        self.end = end
        self.interferers_dbm: list[float] = []
        self.half_duplex = False


class Medium:
    """Connects interfaces through a :class:`~repro.radio.channel.Channel`.

    Parameters
    ----------
    sim:
        The simulator that provides the clock and event queue.
    channel:
        Propagation model shared by all links.
    trace:
        Optional collector with ``on_tx(...)`` / ``on_rx(...)`` methods
        (see :mod:`repro.trace.capture`).
    sensitivity_margin_db:
        Arrivals whose mean power is more than this below the receiver
        noise floor are discarded without bookkeeping.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        *,
        trace: typing.Any | None = None,
        sensitivity_margin_db: float = 10.0,
    ) -> None:
        self._sim = sim
        self._channel = channel
        self._trace = trace
        self._sensitivity_margin_db = sensitivity_margin_db
        self._interfaces: list[NetworkInterface] = []
        self._ongoing: dict[NetworkInterface, list[_Arrival]] = {}

    @property
    def channel(self) -> Channel:
        """The propagation model in use."""
        return self._channel

    @property
    def trace(self) -> typing.Any | None:
        """The attached trace collector, if any."""
        return self._trace

    def set_trace(self, trace: typing.Any | None) -> None:
        """Install or replace the trace collector."""
        self._trace = trace

    def attach(self, iface: "NetworkInterface") -> None:
        """Register an interface.  Each interface joins exactly one medium."""
        if iface in self._interfaces:
            raise MacError(f"interface {iface.name!r} already attached")
        self._interfaces.append(iface)
        self._ongoing[iface] = []

    # -- transmission ---------------------------------------------------------

    def transmit(self, tx_iface: "NetworkInterface", frame: Frame, rate: WifiRate) -> float:
        """Put *frame* on the air from *tx_iface*; returns the airtime.

        Called by the interface at the instant its back-off completed; the
        interface is responsible for marking itself as transmitting for the
        returned duration.
        """
        if tx_iface not in self._ongoing:
            raise MacError(f"interface {tx_iface.name!r} not attached to this medium")
        now = self._sim.now
        airtime = frame_airtime(frame.size_bytes, rate)
        tx_pos = tx_iface.position()
        if self._trace is not None:
            self._trace.on_tx(now, tx_iface.node_id, frame, rate)

        # A station that starts transmitting kills anything it was receiving.
        for arrival in self._ongoing[tx_iface]:
            arrival.half_duplex = True

        for rx_iface in self._interfaces:
            if rx_iface is tx_iface:
                continue
            self._start_arrival(tx_iface, rx_iface, frame, rate, tx_pos, now, airtime)
        return airtime

    def _start_arrival(
        self,
        tx_iface: "NetworkInterface",
        rx_iface: "NetworkInterface",
        frame: Frame,
        rate: WifiRate,
        tx_pos: typing.Any,
        now: float,
        airtime: float,
    ) -> None:
        sample = self._channel.sample(
            tx_iface.node_id,
            rx_iface.node_id,
            tx_pos,
            rx_iface.position(),
            tx_iface.config.tx_power_dbm,
            rx_iface.config.antenna_gain_db,
            time=now,
        )
        noise_floor = rx_iface.config.noise_floor_dbm
        if sample.mean_rx_power_dbm < noise_floor - self._sensitivity_margin_db:
            return  # far out of range: the radio never syncs, nothing recorded
        arrival = _Arrival(frame, rate, sample, now, now + airtime)

        # Mutual interference with everything already on the air here.
        for other in self._ongoing[rx_iface]:
            other.interferers_dbm.append(sample.rx_power_dbm)
            arrival.interferers_dbm.append(other.sample.rx_power_dbm)
        if rx_iface.transmitting:
            arrival.half_duplex = True

        self._ongoing[rx_iface].append(arrival)
        # URGENT so medium bookkeeping settles before normal callbacks at
        # the same instant observe the channel state.
        self._sim.schedule(
            airtime, self._finish_arrival, rx_iface, arrival, priority=Priority.URGENT
        )

    def _finish_arrival(self, rx_iface: "NetworkInterface", arrival: _Arrival) -> None:
        self._ongoing[rx_iface].remove(arrival)
        noise_floor = rx_iface.config.noise_floor_dbm
        if arrival.interferers_dbm:
            noise_plus_interference = dbm_sum(noise_floor, *arrival.interferers_dbm)
        else:
            noise_plus_interference = noise_floor
        snr_db = arrival.sample.rx_power_dbm - noise_plus_interference

        if arrival.half_duplex:
            cause = LossCause.HALF_DUPLEX
        elif (
            arrival.interferers_dbm
            and snr_db < rx_iface.config.capture_threshold_db
        ):
            # Same-code DSSS interference is not suppressed by processing
            # gain: without a capture margin over the interferers the frame
            # is destroyed (classic 802.11 capture model).
            cause = LossCause.INTERFERENCE
        elif self._channel.frame_delivered(
            arrival.sample,
            arrival.rate,
            arrival.frame,
            noise_plus_interference,
            rx_id=rx_iface.node_id,
        ):
            cause = LossCause.DELIVERED
        elif arrival.interferers_dbm:
            cause = LossCause.INTERFERENCE
        else:
            cause = LossCause.CHANNEL

        if self._trace is not None:
            self._trace.on_rx(
                self._sim.now, rx_iface.node_id, arrival.frame, cause, snr_db,
                arrival.sample.rx_power_dbm,
            )
        if cause is LossCause.DELIVERED:
            rx_iface.deliver(
                arrival.frame,
                RxInfo(self._sim.now, arrival.sample.rx_power_dbm, snr_db),
            )

    # -- carrier sense ----------------------------------------------------------

    def busy(self, iface: "NetworkInterface") -> bool:
        """Whether *iface* senses energy above its carrier-sense threshold."""
        if iface.transmitting:
            return True
        threshold = iface.config.carrier_sense_threshold_dbm
        return any(
            arrival.sample.mean_rx_power_dbm >= threshold
            for arrival in self._ongoing[iface]
        )
