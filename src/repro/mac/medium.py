"""The shared wireless medium.

One :class:`Medium` instance connects all interfaces of a scenario.  For
every transmission it samples the channel toward attached receivers,
tracks concurrent arrivals for interference/SINR, enforces half-duplex
radios, and reports outcomes to an optional trace collector.

Reception pipeline per (frame, receiver):

1. bound the receiver's best-case mean power deterministically (path loss
   at current positions plus the configured shadowing headroom) and cull
   the link if it can never clear ``noise_floor - sensitivity_margin`` —
   no RNG is consumed, and because all stochastic channel draws are keyed
   per ``(link, transmission)``, skipping a link cannot perturb any other
   link's realisation;
2. sample path loss + shadowing + fading → received power;
3. drop silently if the mean power is far below the noise floor (the
   receiver's hardware would never sync to the preamble — real sniffers
   record nothing there either);
4. accumulate interference from temporally overlapping arrivals;
5. at frame end, draw delivery from the SINR-dependent frame error rate;
6. a receiver that transmitted during any part of the arrival loses the
   frame outright (half-duplex).

The candidate receivers themselves come from a lazily refreshed spatial
grid (cell size = the maximum reachable radius implied by the path-loss
model), so a broadcast costs O(reachable receivers), not O(attached
interfaces).  ``fast_path=False`` forces the exhaustive path — every
attached interface is bounded *and sampled* — which must produce
bit-identical outcomes (the A/B pin in
``tests/scenarios/test_fast_path_ab.py``).

On top of either discovery mode, ``batch=True`` (the default) runs steps
1–3 for the whole candidate set as one NumPy pass through the vectorized
batch channel kernel (:mod:`repro.radio.batch`) whenever the set is
large enough to amortise the array overhead; the scalar loop remains the
reference implementation and the batch kernel is pinned bit-identical to
it.
"""

from __future__ import annotations

import enum
import math
import typing
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import MacError
from repro.mac.frames import Frame
from repro.mac.timing import frame_airtime
from repro.obs.probes import medium_probes
from repro.radio.batch import LaneScratch, broadcast_samples
from repro.radio.channel import Channel, LinkSample
from repro.radio.error_models import frame_error_rate_batch
from repro.radio.multibatch import PendingSlice, multibroadcast_samples
from repro.radio.modulation import WifiRate
from repro.sim import Priority, Simulator
from repro.units import dbm_sum, dbm_sum_batch

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.geom import Vec2
    from repro.mac.interface import NetworkInterface


class LossCause(enum.Enum):
    """Why a frame did or did not make it to a given receiver."""

    DELIVERED = "delivered"
    CHANNEL = "channel"            # SNR-driven corruption, no interference present
    INTERFERENCE = "interference"  # corrupted with concurrent arrivals on air
    HALF_DUPLEX = "half-duplex"    # receiver was transmitting
    BELOW_SENSITIVITY = "below-sensitivity"


@dataclass(slots=True, frozen=True)
class RxInfo:
    """Receive-side metadata handed to the interface with each frame."""

    time: float
    rx_power_dbm: float
    snr_db: float


class _Arrival:
    """Book-keeping for one frame in flight toward one receiver."""

    __slots__ = (
        "frame", "rate", "sample", "start", "end",
        "interferers_dbm", "half_duplex",
    )

    def __init__(
        self,
        frame: Frame,
        rate: WifiRate,
        sample: LinkSample,
        start: float,
        end: float,
    ) -> None:
        self.frame = frame
        self.rate = rate
        self.sample = sample
        self.start = start
        self.end = end
        self.interferers_dbm: list[float] = []
        self.half_duplex = False


class _PendingTx:
    """One queued (not yet evaluated) broadcast of the coalescing arm.

    Everything order-sensitive was read at transmit time (``tx_seq``,
    the candidate snapshot, the transmitter's position); the stochastic
    evaluation is deferred to the instant-end drain, which is exact
    because every channel draw is keyed by values captured here.
    """

    __slots__ = (
        "tx_iface", "frame", "rate", "tx_pos", "tx_power", "tx_id",
        "start", "end", "airtime", "tx_seq", "candidates",
    )

    def __init__(
        self,
        tx_iface: "NetworkInterface",
        frame: Frame,
        rate: WifiRate,
        tx_pos: "Vec2",
        tx_power: float,
        tx_id: typing.Hashable,
        start: float,
        end: float,
        airtime: float,
        tx_seq: int,
        candidates: list["NetworkInterface"],
    ) -> None:
        self.tx_iface = tx_iface
        self.frame = frame
        self.rate = rate
        self.tx_pos = tx_pos
        self.tx_power = tx_power
        self.tx_id = tx_id
        self.start = start
        self.end = end
        self.airtime = airtime
        self.tx_seq = tx_seq
        self.candidates = candidates


def _post_draw_cause(delivered: bool, arrival: "_Arrival") -> LossCause:
    """Loss cause once the frame-error draw is in — shared by both
    frame-end paths so the attribution rules cannot drift apart."""
    if delivered:
        return LossCause.DELIVERED
    if arrival.interferers_dbm:
        return LossCause.INTERFERENCE
    return LossCause.CHANNEL


class _NeighborIndex:
    """Grid buckets of interface positions, refreshed lazily.

    Built from a snapshot of positions; queries widen their radius by the
    maximum distance any node may have moved since the snapshot
    (``max_speed_ms · age``), so the candidate set is always a superset
    of the truly reachable receivers as long as no node outruns the
    configured speed bound.
    """

    __slots__ = ("cell_m", "built_at", "version", "_buckets")

    def __init__(
        self,
        interfaces: list["NetworkInterface"],
        cell_m: float,
        now: float,
        version: int,
    ) -> None:
        self.cell_m = cell_m
        self.built_at = now
        self.version = version
        buckets: dict[tuple[int, int], list["NetworkInterface"]] = {}
        inv = 1.0 / cell_m
        for iface in interfaces:
            pos = iface.position()
            key = (math.floor(pos.x * inv), math.floor(pos.y * inv))
            buckets.setdefault(key, []).append(iface)
        self._buckets = buckets

    def query(self, pos: "Vec2", radius: float) -> list["NetworkInterface"]:
        """Every interface bucketed within *radius* of *pos* (superset)."""
        inv = 1.0 / self.cell_m
        # Unpack the Vec2 once: each coordinate feeds two bounds, and
        # frozen-dataclass attribute reads are not free on this hot path.
        px, py = pos.x, pos.y
        x_lo = math.floor((px - radius) * inv)
        x_hi = math.floor((px + radius) * inv)
        y_lo = math.floor((py - radius) * inv)
        y_hi = math.floor((py + radius) * inv)
        buckets = self._buckets
        found: list["NetworkInterface"] = []
        if (x_hi - x_lo + 1) * (y_hi - y_lo + 1) >= len(buckets):
            # Query box spans more cells than exist: walking the occupied
            # buckets (and box-testing each) is cheaper than probing the box.
            for (ix, iy), bucket in buckets.items():
                if x_lo <= ix <= x_hi and y_lo <= iy <= y_hi:
                    found.extend(bucket)
            return found
        for ix in range(x_lo, x_hi + 1):
            for iy in range(y_lo, y_hi + 1):
                bucket = buckets.get((ix, iy))
                if bucket is not None:
                    found.extend(bucket)
        return found


class Medium:
    """Connects interfaces through a :class:`~repro.radio.channel.Channel`.

    Parameters
    ----------
    sim:
        The simulator that provides the clock and event queue.
    channel:
        Propagation model shared by all links.
    trace:
        Optional collector with ``on_tx(...)`` / ``on_rx(...)`` methods
        (see :mod:`repro.trace.capture`).
    sensitivity_margin_db:
        Arrivals whose mean power is more than this below the receiver
        noise floor are discarded without bookkeeping.
    fast_path:
        When true (default), receivers are found through the spatial
        neighbor index and hopeless links are culled before sampling.
        When false, every attached interface is bounded and sampled — the
        exhaustive A/B reference, bit-identical to the fast path.
    batch:
        When true (default), broadcasts toward at least
        ``batch_min_candidates`` candidates are evaluated by the
        vectorized batch channel kernel (:mod:`repro.radio.batch`) — one
        NumPy pass over the whole candidate set instead of a per-receiver
        Python loop.  Bit-identical to the scalar path by construction
        (keyed draws + pinned float64 semantics); ``False`` forces the
        scalar reference loop.  Orthogonal to ``fast_path``: candidate
        *discovery* stays grid-or-exhaustive, only per-candidate
        *evaluation* changes shape.
    batch_min_candidates:
        Below this candidate count the scalar loop wins (NumPy's fixed
        per-op overhead beats a short Python loop), so the batch kernel
        steps aside.  Purely a throughput knob — both paths produce the
        same arrivals.
    cross_broadcast_batch:
        When true (default), transmissions are not evaluated one at a
        time: each ``transmit`` snapshots its order-sensitive facts
        (``tx_seq``, candidates, positions) and queues the stochastic
        evaluation, which an instant-end drain performs for *all*
        same-instant broadcasts as one concatenated pass through
        :mod:`repro.radio.multibatch`.  Same-end-time frame-end events
        coalesce analogously.  This lets broadcasts individually below
        ``batch_min_candidates`` clear the vectorization floor together
        (their pooled lanes share one NumPy pass) and is bit-identical to the
        one-at-a-time arm by the keyed-randomness argument — pinned by
        the five-arm differential harness.  ``False`` keeps the legacy
        synchronous path byte for byte.
    cross_batch_min_lanes:
        Extra lower bound on the *total* lane count (across all queued
        broadcasts of the drain) for the concatenated NumPy pass; the
        effective floor is ``max(batch_min_candidates,
        cross_batch_min_lanes)``, so pooled lanes vectorize exactly when
        the same number of lanes in one broadcast would — below it the
        drain runs the scalar reference loop per lane, skipping the
        array gather entirely.  Purely a throughput knob.
    cull_headroom_db:
        Shadowing boost granted to a link before it is declared
        unreachable: a receiver is culled when ``tx_power + rx_gain -
        pathloss - obstruction + headroom`` is below its sensitivity
        threshold.  The bound is part of the reception model — both the
        fast and the exhaustive path apply it, which is what makes them
        bit-identical.  ``None`` derives the provable worst case from
        the channel's clamped shadowing models (±4σ: exact pre-fast-path
        physics, but a much wider radius).  The default 12 dB is a
        fidelity/throughput trade-off: links whose deterministic mean
        sits in the 12 dB band *below* the sensitivity threshold need a
        shadowing boost exceeding the headroom to matter, which for a
        composite σ of ~7 dB happens on a few percent of edge-of-range
        frames — all at least ``sensitivity_margin_db`` under the noise
        floor, so they can never deliver and are lost only as potential
        weak interferers and trace rows.  Scenarios that need the exact
        tail set the headroom knob (``RadioEnvironment.cull_headroom_db``)
        higher or pass ``None``.
    neighbor_refresh_s:
        Maximum age of the neighbor index snapshot before it is rebuilt.
    max_speed_ms:
        Upper bound on node speed, used to widen stale-index queries so a
        moving receiver can never be missed.  Raise it for scenarios with
        faster (or teleporting) mobility.
    neighbor_index_min_nodes:
        Below this interface count the index is skipped (a linear scan of
        so few nodes is cheaper than grid bookkeeping).
    """

    __slots__ = (
        "_sim",
        "_channel",
        "_trace",
        "_sensitivity_margin_db",
        "_fast_path",
        "_batch",
        "_batch_min_candidates",
        "_cull_headroom_db",
        "_neighbor_refresh_s",
        "_max_speed_ms",
        "_neighbor_index_min_nodes",
        "_cross_batch",
        "_cross_batch_min_lanes",
        "_pending",
        "_pending_rx",
        "_drain_time",
        "_finish_registry",
        "_scratch",
        "_interfaces",
        "_ongoing",
        "_attach_rank",
        "_rx_static",
        "_obs",
        "_spans",
        "_delivery_sink",
        "_tx_seq",
        "_index",
        "_index_version",
        "_reach_radius_m",
        "_tx_radius_m",
    )

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        *,
        trace: typing.Any | None = None,
        sensitivity_margin_db: float = 10.0,
        fast_path: bool = True,
        batch: bool = True,
        batch_min_candidates: int = 8,
        cross_broadcast_batch: bool = True,
        cross_batch_min_lanes: int = 2,
        cull_headroom_db: float | None = 12.0,
        neighbor_refresh_s: float = 1.0,
        max_speed_ms: float = 100.0,
        neighbor_index_min_nodes: int = 16,
    ) -> None:
        self._sim = sim
        self._channel = channel
        self._trace = trace
        self._sensitivity_margin_db = sensitivity_margin_db
        self._fast_path = fast_path
        self._batch = batch
        self._batch_min_candidates = batch_min_candidates
        self._cross_batch = cross_broadcast_batch
        self._cross_batch_min_lanes = cross_batch_min_lanes
        # Coalescer state: broadcasts queued this instant, the union of
        # their candidate interfaces (drain triggers), the instant that
        # already scheduled a drain, frame-end groups keyed by end time,
        # and the reusable lane-gather buffers.
        self._pending: list[_PendingTx] = []
        self._pending_rx: set[NetworkInterface] = set()
        self._drain_time = -1.0
        self._finish_registry: dict[
            float, list[list[tuple[NetworkInterface, _Arrival]]]
        ] = {}
        self._scratch = LaneScratch()
        if cull_headroom_db is None:
            cull_headroom_db = channel.shadow_headroom_db()
        self._cull_headroom_db = cull_headroom_db
        self._neighbor_refresh_s = neighbor_refresh_s
        self._max_speed_ms = max_speed_ms
        self._neighbor_index_min_nodes = neighbor_index_min_nodes
        self._interfaces: list[NetworkInterface] = []
        self._ongoing: dict[NetworkInterface, list[_Arrival]] = {}
        # Attach-order rank per interface, cached off the hot path.
        self._attach_rank: dict[NetworkInterface, int] = {}
        # (node id, antenna gain, threshold, mobility batch key, mobility)
        # per interface — the attach-time snapshot both reception paths
        # read: one probe per candidate instead of attribute chases and
        # a batch_key() call per candidate per broadcast.
        self._rx_static: dict[
            NetworkInterface,
            tuple[typing.Hashable, float, float, object, object],
        ] = {}
        # Observability snapshot (see repro.obs): probe bundle + tracer
        # are captured here, so enable/install before building the medium.
        # Both default to None, leaving the hot paths a single is-test.
        self._obs = medium_probes()
        self._spans = obs.tracer()
        # Optional coalesced-delivery sink (see set_delivery_sink).
        self._delivery_sink: typing.Callable[
            [list[tuple["NetworkInterface", Frame, RxInfo]]], None
        ] | None = None
        self._tx_seq = 0
        self._index: _NeighborIndex | None = None
        self._index_version = 0
        self._reach_radius_m: float | None = None
        # Per-transmit-power query radius (radios share a handful of
        # distinct powers, so this stays tiny).
        self._tx_radius_m: dict[float, float] = {}

    @property
    def channel(self) -> Channel:
        """The propagation model in use."""
        return self._channel

    @property
    def trace(self) -> typing.Any | None:
        """The attached trace collector, if any."""
        return self._trace

    @property
    def fast_path(self) -> bool:
        """Whether reception uses the culling fast path."""
        return self._fast_path

    @property
    def batch(self) -> bool:
        """Whether reception uses the vectorized batch channel kernel."""
        return self._batch

    @property
    def cross_broadcast_batch(self) -> bool:
        """Whether same-instant broadcasts coalesce into one channel pass."""
        return self._cross_batch

    @property
    def cull_headroom_db(self) -> float:
        """Shadowing headroom granted by the reachability bound."""
        return self._cull_headroom_db

    def set_trace(self, trace: typing.Any | None) -> None:
        """Install or replace the trace collector."""
        self._trace = trace

    def set_delivery_sink(
        self,
        sink: typing.Callable[
            [list[tuple["NetworkInterface", Frame, RxInfo]]], None
        ] | None,
    ) -> None:
        """Install a coalesced protocol-delivery sink (or remove it).

        Without a sink, each frame-end event hands every successful
        reception to its interface one at a time.  With a sink, the
        frame-end event collects all of a broadcast's deliveries —
        ``(receiver interface, frame, rx info)``, in arrival order — and
        hands the whole batch to *sink* in one call, so a pooled
        protocol engine (:class:`repro.core.engine.ProtocolPool`) can
        step every receiver in a single pass.  The sink takes over
        interface bookkeeping (``frames_received``, receive callbacks)
        for the receivers it manages and must fall back to
        ``iface.deliver`` for the rest.
        """
        self._delivery_sink = sink

    def attach(self, iface: "NetworkInterface") -> None:
        """Register an interface.  Each interface joins exactly one medium.

        The interface's ``config`` and ``mobility`` are snapshotted here
        (thresholds, antenna gain, mobility batch group) and must not be
        reassigned afterwards — both reception paths read the snapshot,
        so a mid-run swap would silently keep the attach-time values.
        Positions stay live either way (``position_fn`` / the mobility
        model are queried per broadcast).
        """
        if iface in self._ongoing:
            raise MacError(f"interface {iface.name!r} already attached")
        self._attach_rank[iface] = len(self._interfaces)
        self._interfaces.append(iface)
        self._ongoing[iface] = []
        threshold = iface.config.noise_floor_dbm - self._sensitivity_margin_db
        mobility = iface.mobility
        self._rx_static[iface] = (
            iface.node_id,
            iface.config.antenna_gain_db,
            threshold,
            mobility.batch_key() if mobility is not None else None,
            mobility,
        )
        self.invalidate_neighbors()

    def invalidate_neighbors(self) -> None:
        """Force a neighbor-index rebuild (topology or mobility jump)."""
        self._index_version += 1
        self._reach_radius_m = None
        self._tx_radius_m.clear()

    # -- candidate discovery --------------------------------------------------

    def _radius_for_loss_budget(self, tx_power_dbm: float) -> float:
        """Radius beyond which *tx_power* cannot pass any receiver's bound."""
        if not self._interfaces:
            return math.inf
        best = tx_power_dbm + max(
            iface.config.antenna_gain_db for iface in self._interfaces
        )
        min_threshold = min(
            threshold for _, _, threshold, _, _ in self._rx_static.values()
        )
        max_loss = best - min_threshold + self._cull_headroom_db
        if not math.isfinite(max_loss):
            return math.inf
        return self._channel.max_range_m(max_loss)

    def _candidates(self, tx_iface: "NetworkInterface", tx_pos: "Vec2") -> list:
        """Receivers that could possibly pass the reachability bound.

        Returns a superset of the bound-passing set, in attach order (the
        per-pair bound in :meth:`transmit` does the exact cull).
        """
        interfaces = self._interfaces
        if (
            not self._fast_path
            or len(interfaces) < self._neighbor_index_min_nodes
        ):
            return interfaces
        # Grid cells are a quarter of the strongest radio's reach (a
        # bucket-count / query-precision sweet spot); queries use the
        # transmitter's own (possibly much shorter) reach.
        cell = self._reach_radius_m
        if cell is None:
            cell = self._reach_radius_m = (
                self._radius_for_loss_budget(
                    max(iface.config.tx_power_dbm for iface in interfaces)
                )
                / 4.0
            )
        if not math.isfinite(cell):
            return interfaces
        tx_power = tx_iface.config.tx_power_dbm
        radius = self._tx_radius_m.get(tx_power)
        if radius is None:
            radius = self._radius_for_loss_budget(tx_power)
            self._tx_radius_m[tx_power] = radius
        now = self._sim.now
        index = self._index
        if (
            index is None
            or index.version != self._index_version
            or now - index.built_at > self._neighbor_refresh_s
        ):
            index = self._index = _NeighborIndex(
                interfaces, cell, now, self._index_version
            )
        slack = self._max_speed_ms * (now - index.built_at)
        found = index.query(tx_pos, radius + slack)
        if len(found) >= len(interfaces):
            return interfaces
        rank = self._attach_rank
        found.sort(key=rank.__getitem__)
        return found

    # -- transmission ---------------------------------------------------------

    def transmit(self, tx_iface: "NetworkInterface", frame: Frame, rate: WifiRate) -> float:
        """Put *frame* on the air from *tx_iface*; returns the airtime.

        Called by the interface at the instant its back-off completed; the
        interface is responsible for marking itself as transmitting for the
        returned duration.
        """
        if self._cross_batch:
            return self._transmit_coalesced(tx_iface, frame, rate)
        ongoing = self._ongoing
        if tx_iface not in ongoing:
            raise MacError(f"interface {tx_iface.name!r} not attached to this medium")
        now = self._sim.now
        airtime = frame_airtime(frame.size_bytes, rate)
        end = now + airtime
        tx_pos = tx_iface.position()
        self._tx_seq += 1
        tx_seq = self._tx_seq
        if self._trace is not None:
            self._trace.on_tx(now, tx_iface.node_id, frame, rate)

        # A station that starts transmitting kills anything it was receiving.
        for arrival in ongoing[tx_iface]:
            arrival.half_duplex = True

        channel = self._channel
        fast = self._fast_path
        headroom = self._cull_headroom_db
        tx_power = tx_iface.config.tx_power_dbm
        tx_id = tx_iface.node_id
        candidates = self._candidates(tx_iface, tx_pos)
        finishing: list[tuple[NetworkInterface, _Arrival]] = []
        use_batch = (
            self._batch and len(candidates) >= self._batch_min_candidates
        )
        spans = self._spans
        if spans is not None:
            spans.begin(
                "broadcast", cat="medium", sim_time=now, tx=str(tx_id),
                candidates=len(candidates),
                path="batch" if use_batch else "scalar",
            )
        scalar_samples = 0
        if use_batch:
            self._receive_batch(
                tx_iface, candidates, frame, rate, tx_pos, tx_power, tx_id,
                now, end, tx_seq, finishing,
            )
        else:
            static = self._rx_static
            for rx_iface in candidates:
                if rx_iface is tx_iface:
                    continue
                # Same attach-time snapshot the batch gather reads, so
                # the two paths can never disagree about radio params.
                _, rx_gain, threshold, _, _ = static[rx_iface]
                rx_pos = rx_iface.position()
                budget = channel.link_budget(tx_pos, rx_pos)
                reachable = tx_power + rx_gain - budget[1] + headroom >= threshold
                if fast and not reachable:
                    continue  # culled without consuming any stochastic draw
                sample = channel.sample(
                    tx_id,
                    rx_iface.node_id,
                    tx_pos,
                    rx_pos,
                    tx_power,
                    rx_gain,
                    time=now,
                    tx_seq=tx_seq,
                    budget=budget,
                )
                scalar_samples += 1
                if not reachable or sample.mean_rx_power_dbm < threshold:
                    continue  # far out of range: the radio never syncs
                self._admit_arrival(
                    rx_iface, _Arrival(frame, rate, sample, now, end), finishing
                )

        if self._obs is not None:
            self._obs.on_broadcast(len(candidates), len(finishing), use_batch)
            self._obs.scalar_floor_calls.value += scalar_samples
        if spans is not None:
            spans.end(admitted=len(finishing))
        if finishing:
            # One frame-end event for the whole broadcast (the arrivals all
            # end at the same instant and carry consecutive ranks anyway).
            # URGENT so medium bookkeeping settles before normal callbacks
            # at the same instant observe the channel state.
            self._sim.schedule(
                airtime, self._finish_transmission, finishing, priority=Priority.URGENT
            )
        return airtime

    # -- cross-broadcast coalescing -------------------------------------------

    def _transmit_coalesced(
        self, tx_iface: "NetworkInterface", frame: Frame, rate: WifiRate
    ) -> float:
        """The ``cross_broadcast_batch`` arm of :meth:`transmit`.

        Performs every order-sensitive step synchronously — the tx-seq
        increment, the trace row, the half-duplex kill of frames the
        transmitter was receiving, the candidate snapshot — but defers
        the stochastic candidate evaluation to :meth:`_drain_pending`,
        which runs once per instant (``Priority.LATE``, after all normal
        events) and evaluates *all* queued broadcasts in one pass.
        Anything that could observe an arrival mid-instant (carrier
        sense, a new transmitter's kill loop, a transmitter's flag
        clearing at ``_tx_done``) drains the queue first, so no event
        can tell the arms apart.
        """
        ongoing = self._ongoing
        if tx_iface not in ongoing:
            raise MacError(f"interface {tx_iface.name!r} not attached to this medium")
        if self._pending and tx_iface in self._pending_rx:
            # Queued broadcasts may hold candidate lanes toward this
            # transmitter; admit them now so the kill loop below (and
            # mutual-interference pairing) sees exactly the scalar state.
            self._drain_pending()
        now = self._sim.now
        airtime = frame_airtime(frame.size_bytes, rate)
        end = now + airtime
        tx_pos = tx_iface.position()
        self._tx_seq += 1
        tx_seq = self._tx_seq
        if self._trace is not None:
            self._trace.on_tx(now, tx_iface.node_id, frame, rate)
        # A station that starts transmitting kills anything it was receiving.
        for arrival in ongoing[tx_iface]:
            arrival.half_duplex = True
        candidates = self._candidates(tx_iface, tx_pos)
        if candidates is self._interfaces:
            # The exhaustive/small-scenario discovery path returns the
            # live attach list; snapshot it so a same-instant attach
            # cannot grow a queued broadcast's candidate set.
            candidates = list(candidates)
        self._pending.append(_PendingTx(
            tx_iface, frame, rate, tx_pos, tx_iface.config.tx_power_dbm,
            tx_iface.node_id, now, end, airtime, tx_seq, candidates,
        ))
        self._pending_rx.update(candidates)
        if self._drain_time != now:
            self._drain_time = now
            self._sim.at_instant_end(self._drain_pending)
        return airtime

    def on_tx_ending(self, iface: "NetworkInterface") -> None:
        """Hook from the interface just before it clears ``transmitting``.

        A broadcast queued earlier this instant must see the flag still
        up when its lane toward *iface* is admitted (the scalar arm read
        it at transmit time), so the queue drains before the clear.
        """
        if self._pending and iface in self._pending_rx:
            self._drain_pending()

    def _drain_pending(self) -> None:
        """Evaluate every queued broadcast in one concatenated pass.

        Gathers all pending broadcasts' candidate lanes into flat scratch
        columns, runs the cross-broadcast kernel once (or the scalar
        reference loop, gather-free, when the pooled lanes stay under
        the ``max(batch_min_candidates, cross_batch_min_lanes)``
        vectorization floor), then admits arrivals broadcast
        by broadcast in FIFO — i.e. ``tx_seq`` — order, which reproduces
        the scalar arm's admission order exactly.  Frame-end events with
        equal end times are merged into one coalesced evaluation.
        """
        pending = self._pending
        if not pending:
            return
        self._pending = []
        self._pending_rx.clear()
        now = self._sim.now
        obs_probes = self._obs
        spans = self._spans
        # The drain vectorizes only above the same amortisation floor as
        # the legacy arm: a handful of lanes loses to the scalar loop no
        # matter how they are pooled, so sub-floor drains (the common
        # case when broadcasts rarely coincide) skip the gather entirely.
        # The candidate count is an upper bound — it may include the
        # transmitter's own lane — which only wobbles the *path* choice
        # at the boundary; both paths are bit-identical by construction.
        # The batch knob keeps its meaning under coalescing: with
        # ``batch=False`` every lane still samples through the scalar
        # reference pipeline (only the event structure coalesces).
        use_multibatch = self._batch and sum(
            len(p.candidates) for p in pending
        ) >= max(self._batch_min_candidates, self._cross_batch_min_lanes)
        if use_multibatch and len(pending) == 1:
            # Nothing pooled this instant (the overwhelmingly common case
            # in protocol rounds, where CSMA back-off jitters broadcasts
            # apart): run the legacy single-broadcast batch kernel
            # directly — same gather, same ``broadcast_samples`` pass —
            # instead of paying the multibatch slicing machinery for a
            # one-slice pass.
            p = pending[0]
            finishing: list[tuple[NetworkInterface, _Arrival]] = []
            if spans is not None:
                spans.begin(
                    "broadcast", cat="medium", sim_time=now, tx=str(p.tx_id),
                    candidates=len(p.candidates), path="batch",
                )
            self._receive_batch(
                p.tx_iface, p.candidates, p.frame, p.rate, p.tx_pos,
                p.tx_power, p.tx_id, p.start, p.end, p.tx_seq, finishing,
            )
            if obs_probes is not None:
                obs_probes.on_broadcast(len(p.candidates), len(finishing), True)
            if spans is not None:
                spans.end(admitted=len(finishing))
            if finishing:
                self._register_finish(p.end, finishing)
            return
        if use_multibatch:
            static = self._rx_static
            scratch = self._scratch
            scratch.reserve(sum(len(p.candidates) for p in pending))
            rx_xs = scratch.rx_xs
            rx_ys = scratch.rx_ys
            rx_gains = scratch.rx_gains
            rx_floors = scratch.rx_floors
            rx_ifaces: list[NetworkInterface] = []
            rx_ids: list[typing.Hashable] = []
            slices: list[PendingSlice] = []
            # Mobility batch groups pool across *all* queued broadcasts —
            # every lane shares the drain instant, so one vectorized query
            # per batch key covers lanes of different transmitters.
            groups: dict[object, tuple[list[int], list[object]]] = {}
            scalar_pos: list[int] = []
            lane = 0
            for p in pending:
                start = lane
                tx_iface = p.tx_iface
                for rx_iface in p.candidates:
                    if rx_iface is tx_iface:
                        continue
                    node_id, gain, floor, key, mobility = static[rx_iface]
                    rx_ifaces.append(rx_iface)
                    rx_ids.append(node_id)
                    rx_gains[lane] = gain
                    rx_floors[lane] = floor
                    if key is None:
                        scalar_pos.append(lane)
                    else:
                        group = groups.get(key)
                        if group is None:
                            groups[key] = ([lane], [mobility])
                        else:
                            group[0].append(lane)
                            group[1].append(mobility)
                    lane += 1
                scratch.tx_xs[start:lane] = p.tx_pos.x
                scratch.tx_ys[start:lane] = p.tx_pos.y
                scratch.tx_powers[start:lane] = p.tx_power
                scratch.tx_seqs[start:lane] = p.tx_seq
                slices.append(
                    PendingSlice(p.tx_id, p.tx_pos, p.tx_power, p.tx_seq, start, lane)
                )
            total = lane
            for indices, models in groups.values():
                if len(indices) < 4:
                    # Tiny group: the vectorized query's fixed overhead
                    # loses to a couple of scalar calls (same values
                    # either way).
                    scalar_pos.extend(indices)
                    continue
                group_xs, group_ys = models[0].positions_at_time(models, now)
                lanes = np.array(indices)
                rx_xs[lanes] = group_xs
                rx_ys[lanes] = group_ys
            for i in scalar_pos:
                pos = rx_ifaces[i].position()
                rx_xs[i] = pos.x
                rx_ys[i] = pos.y
            if obs_probes is not None:
                obs_probes.lanes.observe(total)
                obs_probes.coalesced_broadcasts.value += len(pending)
            if spans is not None:
                spans.begin(
                    "multibatch-kernel", cat="medium",
                    lanes=total, broadcasts=len(pending),
                )
            results = multibroadcast_samples(
                self._channel,
                slices,
                rx_ids,
                scratch.tx_xs[:total],
                scratch.tx_ys[:total],
                rx_xs[:total],
                rx_ys[:total],
                rx_gains[:total],
                rx_floors[:total],
                scratch.tx_powers[:total],
                scratch.tx_seqs[:total],
                self._cull_headroom_db,
                now,
            )
            if spans is not None:
                spans.end(kept=sum(len(r.kept) for r in results))
        for k, p in enumerate(pending):
            finishing: list[tuple[NetworkInterface, _Arrival]] = []
            if spans is not None:
                spans.begin(
                    "broadcast", cat="medium", sim_time=now, tx=str(p.tx_id),
                    candidates=len(p.candidates),
                    path="multibatch" if use_multibatch else "scalar",
                )
            if use_multibatch:
                sl = slices[k]
                result = results[k]
                rx_power = result.rx_power_dbm.tolist()
                mean_power = result.mean_rx_power_dbm.tolist()
                distance = result.distance_m.tolist()
                for j, i in enumerate(result.kept.tolist()):
                    sample = LinkSample(
                        rx_power_dbm=rx_power[j],
                        mean_rx_power_dbm=mean_power[j],
                        distance_m=distance[j],
                    )
                    self._admit_arrival(
                        rx_ifaces[sl.start + i],
                        _Arrival(p.frame, p.rate, sample, p.start, p.end),
                        finishing,
                    )
            else:
                self._drain_scalar(p, finishing)
            if obs_probes is not None:
                obs_probes.on_broadcast(
                    len(p.candidates), len(finishing), use_multibatch
                )
            if spans is not None:
                spans.end(admitted=len(finishing))
            if finishing:
                self._register_finish(p.end, finishing)

    def _register_finish(
        self,
        end: float,
        finishing: list[tuple["NetworkInterface", _Arrival]],
    ) -> None:
        """Queue one broadcast's arrivals for the coalesced frame end.

        URGENT for the same reason as the legacy arm; one event serves
        every broadcast sharing the end time.
        """
        registry = self._finish_registry
        group_list = registry.get(end)
        if group_list is None:
            registry[end] = [finishing]
            self._sim.schedule_at(
                end, self._finish_coalesced, end, priority=Priority.URGENT
            )
        else:
            group_list.append(finishing)

    def _drain_scalar(
        self,
        p: _PendingTx,
        finishing: list[tuple["NetworkInterface", _Arrival]],
    ) -> None:
        """Scalar-floor evaluation of one queued broadcast.

        The same per-receiver pipeline as the legacy scalar loop — the
        reference semantics — used when the whole drain holds too few
        lanes to amortise the NumPy pass.  Iterates the captured
        candidate snapshot directly so sub-floor drains never pay the
        array gather.
        """
        channel = self._channel
        fast = self._fast_path
        headroom = self._cull_headroom_db
        static = self._rx_static
        tx_iface = p.tx_iface
        tx_pos = p.tx_pos
        tx_power = p.tx_power
        scalar_samples = 0
        for rx_iface in p.candidates:
            if rx_iface is tx_iface:
                continue
            _, rx_gain, threshold, _, _ = static[rx_iface]
            rx_pos = rx_iface.position()
            budget = channel.link_budget(tx_pos, rx_pos)
            reachable = tx_power + rx_gain - budget[1] + headroom >= threshold
            if fast and not reachable:
                continue  # culled without consuming any stochastic draw
            sample = channel.sample(
                p.tx_id,
                rx_iface.node_id,
                tx_pos,
                rx_pos,
                tx_power,
                rx_gain,
                time=p.start,
                tx_seq=p.tx_seq,
                budget=budget,
            )
            scalar_samples += 1
            if not reachable or sample.mean_rx_power_dbm < threshold:
                continue  # far out of range: the radio never syncs
            self._admit_arrival(
                rx_iface,
                _Arrival(p.frame, p.rate, sample, p.start, p.end),
                finishing,
            )
        if self._obs is not None:
            self._obs.scalar_floor_calls.value += scalar_samples

    def _finish_coalesced(self, end: float) -> None:
        """Frame end for every broadcast whose transmission ends at *end*.

        A single-group end time takes the legacy per-broadcast path
        unchanged.  Multiple groups evaluate their frame-error curves as
        one vectorized pass per ``(rate, frame size)`` bucket — exact,
        the curve is elementwise-pure — while the Bernoulli draws, loss
        causes, trace rows and deliveries run per arrival in the scalar
        event order (groups in registration order, arrivals within), so
        the channel RNG stream and every observable side effect match
        the one-event-per-broadcast arm bit for bit.
        """
        groups = self._finish_registry.pop(end)
        if len(groups) == 1:
            self._finish_transmission(groups[0])
            return
        channel = self._channel
        cls = type(channel)
        if (
            cls.frame_delivered is not Channel.frame_delivered
            or cls.frames_delivered_batch is not Channel.frames_delivered_batch
        ):
            # Scripted delivery outcomes: evaluate per broadcast through
            # the legacy path, in registration order (event order).
            for finishing in groups:
                self._finish_transmission(finishing)
            return
        obs_probes = self._obs
        if obs_probes is not None:
            obs_probes.frame_end_batch.value += len(groups)
        flat: list[tuple[NetworkInterface, _Arrival]] = []
        bounds: list[int] = [0]
        for finishing in groups:
            flat.extend(finishing)
            bounds.append(len(flat))
        n = len(flat)
        snrs: list[float] = []
        npis: list[float] = []
        causes: list[LossCause | None] = [None] * n
        pending_lanes: list[int] = []
        for i, (rx_iface, arrival) in enumerate(flat):
            npi, snr_db, cause = self._pre_classify(rx_iface, arrival)
            npis.append(npi)
            snrs.append(snr_db)
            causes[i] = cause
            if cause is None:
                pending_lanes.append(i)
        if pending_lanes:
            # FER is pure per (rate, size, SINR): bucket by curve, then
            # draw sequentially in flat (= scalar event) order.
            buckets: dict[tuple, list[int]] = {}
            for j, i in enumerate(pending_lanes):
                arrival = flat[i][1]
                key = (arrival.rate, arrival.frame.size_bytes)
                buckets.setdefault(key, []).append(j)
            fers = np.empty(len(pending_lanes))
            for (rate, size_bytes), members in buckets.items():
                sinr = np.array(
                    [
                        flat[pending_lanes[j]][1].sample.rx_power_dbm
                        - npis[pending_lanes[j]]
                        for j in members
                    ]
                )
                fers[members] = frame_error_rate_batch(rate, sinr, size_bytes)
            outcomes = channel.delivery_draws(fers.tolist())
            for j, i in enumerate(pending_lanes):
                causes[i] = _post_draw_cause(outcomes[j], flat[i][1])
        now = self._sim.now
        trace = self._trace
        ongoing = self._ongoing
        sink = self._delivery_sink
        for g in range(len(groups)):
            delivered: list[tuple[NetworkInterface, Frame, RxInfo]] = []
            for i in range(bounds[g], bounds[g + 1]):
                rx_iface, arrival = flat[i]
                ongoing[rx_iface].remove(arrival)
                cause = causes[i]
                if trace is not None:
                    trace.on_rx(
                        now, rx_iface.node_id, arrival.frame, cause, snrs[i],
                        arrival.sample.rx_power_dbm,
                    )
                if cause is LossCause.DELIVERED:
                    delivered.append((
                        rx_iface,
                        arrival.frame,
                        RxInfo(now, arrival.sample.rx_power_dbm, snrs[i]),
                    ))
            if not delivered:
                continue
            if obs_probes is not None:
                obs_probes.delivery_lanes.observe(len(delivered))
            if sink is not None:
                sink(delivered)
            else:
                for rx_iface, frame, info in delivered:
                    rx_iface.deliver(frame, info)

    def _admit_arrival(
        self,
        rx_iface: "NetworkInterface",
        arrival: _Arrival,
        finishing: list[tuple["NetworkInterface", _Arrival]],
    ) -> None:
        """Register an in-range arrival: interference links + bookkeeping."""
        sample = arrival.sample
        # Mutual interference with everything already on the air here.
        for other in self._ongoing[rx_iface]:
            other.interferers_dbm.append(sample.rx_power_dbm)
            arrival.interferers_dbm.append(other.sample.rx_power_dbm)
        if rx_iface.transmitting:
            arrival.half_duplex = True
        self._ongoing[rx_iface].append(arrival)
        finishing.append((rx_iface, arrival))

    def _receive_batch(
        self,
        tx_iface: "NetworkInterface",
        candidates: list["NetworkInterface"],
        frame: Frame,
        rate: WifiRate,
        tx_pos: "Vec2",
        tx_power: float,
        tx_id: typing.Hashable,
        now: float,
        end: float,
        tx_seq: int,
        finishing: list[tuple["NetworkInterface", _Arrival]],
    ) -> None:
        """One vectorized pass over the candidate set (bit-identical).

        Gathers the candidates into flat arrays — positions unpacked
        once per Vec2, gains and cached thresholds alongside — and hands
        them to :func:`repro.radio.batch.broadcast_samples`; survivors
        come back as aligned arrays and are admitted in candidate order,
        so arrival ordering (and with it interference pairing and event
        ranks) matches the scalar loop exactly.
        """
        static = self._rx_static
        scratch = self._scratch
        scratch.reserve(len(candidates))
        rx_gains = scratch.rx_gains
        rx_floors = scratch.rx_floors
        rx_ifaces: list[NetworkInterface] = []
        rx_ids: list[typing.Hashable] = []
        # Mobility batch groups: candidates whose models share a batch
        # key get their positions from one vectorized query (index list,
        # model list); everyone else queries position_fn per candidate.
        groups: dict[object, tuple[list[int], list[object]]] = {}
        scalar_pos: list[int] = []
        index = 0
        for rx_iface in candidates:
            if rx_iface is tx_iface:
                continue
            rx_ifaces.append(rx_iface)
            node_id, gain, floor, key, mobility = static[rx_iface]
            rx_ids.append(node_id)
            rx_gains[index] = gain
            rx_floors[index] = floor
            if key is None:
                scalar_pos.append(index)
            else:
                group = groups.get(key)
                if group is None:
                    groups[key] = ([index], [mobility])
                else:
                    group[0].append(index)
                    group[1].append(mobility)
            index += 1
        if not index:
            return
        xs = scratch.rx_xs
        ys = scratch.rx_ys
        for indices, models in groups.values():
            if len(indices) < 4:
                # Tiny group: the vectorized query's fixed overhead loses
                # to a couple of scalar calls (same values either way).
                scalar_pos.extend(indices)
                continue
            group_xs, group_ys = models[0].positions_at_time(models, now)
            lanes = np.array(indices)
            xs[lanes] = group_xs
            ys[lanes] = group_ys
        for i in scalar_pos:
            pos = rx_ifaces[i].position()
            xs[i] = pos.x
            ys[i] = pos.y
        obs_probes = self._obs
        if obs_probes is not None:
            obs_probes.lanes.observe(index)
        spans = self._spans
        if spans is not None:
            spans.begin("batch-kernel", cat="medium", lanes=index)
        result = broadcast_samples(
            self._channel, tx_id, rx_ids, tx_pos,
            xs[:index], ys[:index], rx_gains[:index], rx_floors[:index],
            tx_power, self._cull_headroom_db, now, tx_seq,
        )
        if spans is not None:
            spans.end(kept=len(result.kept))
        rx_power = result.rx_power_dbm.tolist()
        mean_power = result.mean_rx_power_dbm.tolist()
        distance = result.distance_m.tolist()
        for j, i in enumerate(result.kept.tolist()):
            sample = LinkSample(
                rx_power_dbm=rx_power[j],
                mean_rx_power_dbm=mean_power[j],
                distance_m=distance[j],
            )
            self._admit_arrival(
                rx_ifaces[i], _Arrival(frame, rate, sample, now, end), finishing
            )

    def _finish_transmission(
        self, finishing: list[tuple["NetworkInterface", _Arrival]]
    ) -> None:
        """Frame end for one broadcast: classify all arrivals, deliver once.

        Both classification paths collect the successful receptions into
        one ``delivered`` list (arrival order) and dispatch at the end —
        through the delivery sink as a single batched call when one is
        installed, through ``iface.deliver`` per receiver otherwise.
        Deferring delivery past classification is exact: channel draws
        are keyed per (link, transmission) and protocol reactions only
        schedule future events, so no classification can observe a
        delivery's side effects either way.
        """
        delivered: list[tuple[NetworkInterface, Frame, RxInfo]] = []
        if self._batch and len(finishing) >= self._batch_min_candidates:
            if self._obs is not None:
                self._obs.frame_end_batch.value += 1
            self._finish_batch(finishing, delivered)
        else:
            if self._obs is not None:
                self._obs.frame_end_scalar.value += 1
            for rx_iface, arrival in finishing:
                self._finish_arrival(rx_iface, arrival, delivered)
        if not delivered:
            return
        if self._obs is not None:
            self._obs.delivery_lanes.observe(len(delivered))
        sink = self._delivery_sink
        if sink is not None:
            sink(delivered)
        else:
            for rx_iface, frame, info in delivered:
                rx_iface.deliver(frame, info)

    def _finish_batch(
        self,
        finishing: list[tuple["NetworkInterface", _Arrival]],
        delivered: list[tuple["NetworkInterface", Frame, RxInfo]],
    ) -> None:
        """Frame-end bookkeeping for a whole broadcast at once.

        All arrivals of one transmission share the frame and rate, so
        the SINR → frame-error-rate curve evaluates as one vectorized
        pass; interference totals, loss causes, Bernoulli draws and
        trace rows still run per arrival in the scalar order, which
        keeps the outcome stream bit-identical to
        :meth:`_finish_arrival`.  Successful receptions are appended to
        *delivered* for the caller to dispatch.
        """
        n = len(finishing)
        snrs: list[float] = []
        npis: list[float] = []
        causes: list[LossCause | None] = [None] * n
        pending: list[int] = []
        for i, (rx_iface, arrival) in enumerate(finishing):
            npi, snr_db, cause = self._pre_classify(rx_iface, arrival)
            npis.append(npi)
            snrs.append(snr_db)
            causes[i] = cause
            if cause is None:
                pending.append(i)
        if pending:
            first = finishing[pending[0]][1]
            outcomes = self._channel.frames_delivered_batch(
                [finishing[i][1].sample for i in pending],
                first.rate,
                first.frame,
                np.array([npis[i] for i in pending]),
                [finishing[i][0].node_id for i in pending],
            )
            for i, ok in zip(pending, outcomes):
                causes[i] = _post_draw_cause(ok, finishing[i][1])
        now = self._sim.now
        trace = self._trace
        for i, (rx_iface, arrival) in enumerate(finishing):
            self._ongoing[rx_iface].remove(arrival)
            cause = causes[i]
            if trace is not None:
                trace.on_rx(
                    now, rx_iface.node_id, arrival.frame, cause, snrs[i],
                    arrival.sample.rx_power_dbm,
                )
            if cause is LossCause.DELIVERED:
                delivered.append((
                    rx_iface,
                    arrival.frame,
                    RxInfo(now, arrival.sample.rx_power_dbm, snrs[i]),
                ))

    def _pre_classify(
        self, rx_iface: "NetworkInterface", arrival: _Arrival
    ) -> tuple[float, float, LossCause | None]:
        """``(noise+interference, snr, cause)`` before the delivery draw.

        The single source of the frame-end semantics — interference
        aggregation and the capture model — shared by the per-arrival
        and batched paths so the two can never drift apart.  A ``None``
        cause means the outcome still depends on the SINR-driven
        frame-error draw.
        """
        noise_floor = rx_iface.config.noise_floor_dbm
        interferers = arrival.interferers_dbm
        if not interferers:
            noise_plus_interference = noise_floor
        elif len(interferers) < 8:
            noise_plus_interference = dbm_sum(noise_floor, *interferers)
        else:
            # Storm-grade interference: the array-shaped conversion
            # wins; exact-equivalent to dbm_sum by construction
            # (pinned in tests/test_units.py).
            noise_plus_interference = dbm_sum_batch([noise_floor] + interferers)
        snr_db = arrival.sample.rx_power_dbm - noise_plus_interference
        if arrival.half_duplex:
            return noise_plus_interference, snr_db, LossCause.HALF_DUPLEX
        if interferers and snr_db < rx_iface.config.capture_threshold_db:
            # Same-code DSSS interference is not suppressed by processing
            # gain: without a capture margin over the interferers the frame
            # is destroyed (classic 802.11 capture model).
            return noise_plus_interference, snr_db, LossCause.INTERFERENCE
        return noise_plus_interference, snr_db, None

    def _finish_arrival(
        self,
        rx_iface: "NetworkInterface",
        arrival: _Arrival,
        delivered: list[tuple["NetworkInterface", Frame, RxInfo]],
    ) -> None:
        self._ongoing[rx_iface].remove(arrival)
        noise_plus_interference, snr_db, cause = self._pre_classify(
            rx_iface, arrival
        )
        if cause is None:
            cause = _post_draw_cause(
                self._channel.frame_delivered(
                    arrival.sample,
                    arrival.rate,
                    arrival.frame,
                    noise_plus_interference,
                    rx_id=rx_iface.node_id,
                ),
                arrival,
            )

        if self._trace is not None:
            self._trace.on_rx(
                self._sim.now, rx_iface.node_id, arrival.frame, cause, snr_db,
                arrival.sample.rx_power_dbm,
            )
        if cause is LossCause.DELIVERED:
            delivered.append((
                rx_iface,
                arrival.frame,
                RxInfo(self._sim.now, arrival.sample.rx_power_dbm, snr_db),
            ))

    # -- carrier sense ----------------------------------------------------------

    def busy(self, iface: "NetworkInterface") -> bool:
        """Whether *iface* senses energy above its carrier-sense threshold.

        Concurrent arrivals add up in the detector: two frames each just
        below the threshold are sensed busy together, so the arrivals'
        mean powers are aggregated with :func:`~repro.units.dbm_sum`
        before the comparison.
        """
        if iface.transmitting:
            return True
        if self._pending and iface in self._pending_rx:
            # Queued same-instant broadcasts may carry energy toward this
            # interface; admit them before reading the detector (only
            # candidate lanes can matter — non-candidates keep coalescing).
            self._drain_pending()
        arrivals = self._ongoing[iface]
        if not arrivals:
            return False
        threshold = iface.config.carrier_sense_threshold_dbm
        if len(arrivals) == 1:
            return arrivals[0].sample.mean_rx_power_dbm >= threshold
        total = dbm_sum(*(arrival.sample.mean_rx_power_dbm for arrival in arrivals))
        return total >= threshold
