"""802.11-like MAC substrate.

Provides the frame taxonomy used by the C-ARQ protocol and its baselines,
802.11 DSSS/OFDM timing constants, a shared :class:`Medium` that resolves
per-receiver interference, and a CSMA/CA broadcast interface.

Fidelity notes (documented deviations from IEEE 802.11):

* The testbed ran radios in *monitor mode with retransmissions disabled* —
  so there are no ACKs, no RTS/CTS and no MAC-level retries here either,
  and every interface is promiscuous (it hears frames addressed to other
  nodes, which is what makes cooperative buffering possible).
* Back-off counters are redrawn (with doubled contention window) when the
  medium is sensed busy at the end of the back-off, instead of being frozen
  and resumed.  With the handful of contending stations in all scenarios
  this changes nothing observable and keeps the state machine simple.
"""

from repro.mac.frames import (
    AckFrame,
    BROADCAST,
    CoopDataFrame,
    DataFrame,
    Frame,
    HelloFrame,
    NackFrame,
    RequestFrame,
    SummaryFrame,
)
from repro.mac.timing import MacTiming, DSSS_TIMING, OFDM_TIMING, frame_airtime
from repro.mac.medium import LossCause, Medium, RxInfo
from repro.mac.interface import NetworkInterface

__all__ = [
    "AckFrame",
    "BROADCAST",
    "CoopDataFrame",
    "DataFrame",
    "DSSS_TIMING",
    "Frame",
    "frame_airtime",
    "HelloFrame",
    "LossCause",
    "MacTiming",
    "Medium",
    "NackFrame",
    "NetworkInterface",
    "OFDM_TIMING",
    "RequestFrame",
    "RxInfo",
    "SummaryFrame",
]
