"""The per-node network interface: CSMA/CA transmit queue + promiscuous RX.

The interface accepts frames from the protocol layer, contends for the
medium (DIFS + slotted random back-off, redrawing with a doubled contention
window when the medium is sensed busy — see the fidelity note in
:mod:`repro.mac`), transmits them in FIFO order, and delivers *every*
correctly received frame to the receive callback (monitor mode, as in the
testbed).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

import numpy as np

from repro.errors import MacError
from repro.geom import Vec2
from repro.mac.frames import Frame, NodeId
from repro.mac.medium import Medium, RxInfo
from repro.mac.timing import timing_for
from repro.radio.modulation import WifiRate
from repro.radio.phy import RadioConfig
from repro.sim import Simulator

ReceiveCallback = Callable[[Frame, RxInfo], None]


class NetworkInterface:
    """One radio attached to one node and one medium.

    Parameters
    ----------
    sim, medium:
        Simulation kernel and the shared medium.
    node_id:
        Identity used in frames and channel link keys.
    position_fn:
        Zero-argument callable returning the node's current position —
        typically ``lambda: mobility.position(sim.now)``.
    config:
        Static PHY parameters.
    rng:
        Stream for back-off draws (one per node).
    name:
        Human-readable label for diagnostics.
    mobility:
        The node's mobility model, when the owner has one.  When given,
        it MUST be the exact model ``position_fn`` reports from (no
        wrapping, no offsets): the medium's batch reception kernel
        groups candidates whose models share a
        :meth:`~repro.mobility.base.MobilityModel.batch_key` and queries
        the models directly, bypassing ``position_fn`` — a diverging
        pair would silently break the pinned batch/scalar bit-identity.
        ``None`` (the default) makes every query go through
        ``position_fn``.  Like ``config``, it is snapshotted by
        ``Medium.attach`` and must not be reassigned afterwards.
    """

    __slots__ = (
        "_sim",
        "_medium",
        "node_id",
        "_position_fn",
        "config",
        "_rng",
        "mobility",
        "name",
        "_queue",
        "_transmitting",
        "_contending",
        "_timing",
        "_cw",
        "_receive_callbacks",
        "frames_sent",
        "bytes_sent",
        "frames_received",
    )

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        node_id: NodeId,
        position_fn: Callable[[], Vec2],
        config: RadioConfig,
        rng: np.random.Generator,
        name: str = "",
        mobility=None,
    ) -> None:
        self._sim = sim
        self._medium = medium
        self.node_id = node_id
        self._position_fn = position_fn
        self.config = config
        self._rng = rng
        self.mobility = mobility
        self.name = name or f"iface-{node_id}"

        self._queue: deque[tuple[Frame, WifiRate]] = deque()
        self._transmitting = False
        self._contending = False
        # Contention-cycle state (valid while _contending): the timing
        # grid of the head frame and the current contention window.
        self._timing = None
        self._cw = 0
        self._receive_callbacks: list[ReceiveCallback] = []

        # Counters for overhead accounting (epidemic-vs-C-ARQ experiment).
        self.frames_sent = 0
        self.bytes_sent = 0
        self.frames_received = 0

        medium.attach(self)

    # -- geometry ----------------------------------------------------------------

    def position(self) -> Vec2:
        """Current node position (delegates to the mobility model)."""
        return self._position_fn()

    # -- receive path ---------------------------------------------------------------

    def add_receive_callback(self, callback: ReceiveCallback) -> None:
        """Register a promiscuous receive handler."""
        self._receive_callbacks.append(callback)

    def deliver(self, frame: Frame, info: RxInfo) -> None:
        """Called by the medium for each successfully received frame."""
        self.frames_received += 1
        for callback in list(self._receive_callbacks):
            callback(frame, info)

    # -- transmit path ----------------------------------------------------------------

    @property
    def transmitting(self) -> bool:
        """True while a frame from this interface is on the air."""
        return self._transmitting

    @property
    def queue_length(self) -> int:
        """Frames waiting for the medium (not counting the one on air)."""
        return len(self._queue)

    def send(self, frame: Frame, rate: WifiRate | None = None) -> None:
        """Enqueue *frame* for transmission at *rate* (default: config rate).

        Raises
        ------
        MacError
            If the frame's source does not match this interface's node.
        """
        if frame.src != self.node_id:
            raise MacError(
                f"frame src {frame.src!r} does not match interface node {self.node_id!r}"
            )
        self._queue.append((frame, rate if rate is not None else self.config.rate))
        if not self._contending and not self._transmitting:
            self._contending = True
            # Kick-off at the current instant (not inline): creation
            # order must not leak into execution order, exactly as a
            # process kick-off.
            self._sim.schedule(0.0, self._start_cycle)

    def flush(self) -> int:
        """Drop all queued (not yet on-air) frames; returns how many."""
        dropped = len(self._queue)
        self._queue.clear()
        return dropped

    # The CSMA/CA loop is a flat callback state machine rather than a
    # generator process: contention is the hottest control flow in a
    # dense scenario (one cycle per frame, several wake-ups per cycle),
    # and the process machinery's per-resumption cost — generator send,
    # yield-type dispatch, Process bookkeeping — dominated large-N
    # profiles.  The callbacks schedule exactly the events the generator
    # version yielded, in the same order with the same RNG draws, so
    # event sequence numbers (and thus all downstream tie-breaking) are
    # unchanged — pinned by the scenario golden tests.

    def _start_cycle(self) -> None:
        """Begin one contention cycle for the head frame (DIFS + back-off)."""
        if not self._queue:  # flushed since the kick-off was scheduled
            self._contending = False
            return
        timing = timing_for(self._queue[0][1])
        self._timing = timing
        self._cw = timing.cw_min
        backoff_slots = int(self._rng.integers(0, self._cw + 1))
        self._sim.schedule(
            timing.difs_s + backoff_slots * timing.slot_s, self._backoff_done
        )

    def _backoff_done(self) -> None:
        """Back-off expired: transmit if the medium is free, else redraw."""
        timing = self._timing
        if self._medium.busy(self):
            self._cw = min(2 * self._cw + 1, timing.cw_max)
            backoff_slots = int(self._rng.integers(0, self._cw + 1))
            self._sim.schedule(
                timing.difs_s + backoff_slots * timing.slot_s, self._backoff_done
            )
            return
        frame, rate = self._queue.popleft()
        airtime = self._medium.transmit(self, frame, rate)
        self._transmitting = True
        self.frames_sent += 1
        self.bytes_sent += frame.size_bytes
        self._sim.schedule(airtime, self._tx_done)

    def _tx_done(self) -> None:
        """Frame left the air: start the next cycle or go idle."""
        # Broadcasts queued earlier this instant by the medium's
        # cross-broadcast coalescer must observe the transmitting flag
        # *before* it clears (the one-at-a-time arm read it at their
        # transmit events, which precede this one in seq order).
        self._medium.on_tx_ending(self)
        self._transmitting = False
        if self._queue:
            # The generator version continued its loop within the same
            # event callback; starting the next cycle inline keeps the
            # RNG-draw and schedule order identical.
            self._start_cycle()
        else:
            self._contending = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NetworkInterface({self.name!r}, queue={len(self._queue)})"
