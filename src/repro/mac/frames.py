"""Frame taxonomy.

Sizes include MAC and (for data) IP/ICMP headers so airtimes match the
testbed's "1000-byte ICMP payload" traffic.  Frames are immutable value
objects; the medium copies nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NewType

NodeId = NewType("NodeId", int)

#: Destination meaning "all stations in range".
BROADCAST: NodeId = NodeId(-1)

#: 802.11 MAC header + FCS overhead in bytes.
MAC_OVERHEAD_BYTES = 34

#: IP + ICMP header bytes on data frames (the AP sent ICMP echo requests).
IP_ICMP_OVERHEAD_BYTES = 28


@dataclass(slots=True, frozen=True)
class Frame:
    """Base class for everything that crosses the medium.

    Attributes
    ----------
    src:
        Transmitting node.
    dst:
        Destination node or :data:`BROADCAST`.  Interfaces are promiscuous:
        delivery is decided by the channel, not by this field.
    size_bytes:
        Total on-air size used for airtime and error-rate computations.
    """

    src: NodeId
    dst: NodeId
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"frame size must be positive, got {self.size_bytes!r}")


@dataclass(slots=True, frozen=True)
class DataFrame(Frame):
    """A numbered data packet of one AP→car flow.

    ``flow_dst`` identifies the flow (the car the packet is addressed to) —
    it stays constant when a cooperator later relays the packet, while
    ``src``/``dst`` describe the current hop.
    """

    flow_dst: NodeId = BROADCAST
    seq: int = 0

    @staticmethod
    def size_for_payload(payload_bytes: int) -> int:
        """On-air size of a data frame with the given ICMP payload."""
        return payload_bytes + IP_ICMP_OVERHEAD_BYTES + MAC_OVERHEAD_BYTES


@dataclass(slots=True, frozen=True)
class HelloFrame(Frame):
    """Periodic broadcast beacon establishing cooperation relationships.

    Attributes
    ----------
    cooperators:
        The sender's ordered cooperator list.  Receivers that find
        themselves at index *i* know (a) that they must buffer for the
        sender and (b) that they hold responder back-off order *i* in the
        recovery phase (§3.2 of the paper).
    flow_ranges:
        Per-flow ``(min_seq, max_seq)`` of packets the sender has buffered,
        as a tuple of ``(flow_dst, lo, hi)`` triples.  This implements the
        range-discovery interpretation recorded in DESIGN.md §2.
    """

    cooperators: tuple[NodeId, ...] = ()
    flow_ranges: tuple[tuple[NodeId, int, int], ...] = ()

    @staticmethod
    def size_for(n_cooperators: int, n_ranges: int) -> int:
        """HELLO frames are small: header + 6 B per id + 10 B per range."""
        return MAC_OVERHEAD_BYTES + 8 + 6 * n_cooperators + 10 * n_ranges


@dataclass(slots=True, frozen=True)
class RequestFrame(Frame):
    """Dark-area request for missing packets of the sender's own flow.

    The paper's base protocol puts exactly one sequence number per REQUEST;
    the batched optimisation (§3.3) packs many.  ``seqs`` is the requested
    set either way.
    """

    seqs: tuple[int, ...] = ()

    @staticmethod
    def size_for(n_seqs: int) -> int:
        """Header + 4 B per requested sequence number."""
        return MAC_OVERHEAD_BYTES + 8 + 4 * n_seqs


@dataclass(slots=True, frozen=True)
class CoopDataFrame(Frame):
    """A buffered packet relayed by a cooperator during recovery."""

    flow_dst: NodeId = BROADCAST
    seq: int = 0
    relayer: NodeId = BROADCAST


@dataclass(slots=True, frozen=True)
class AckFrame(Frame):
    """Positive acknowledgement — used only by the in-coverage ARQ baseline."""

    acked_seq: int = 0


@dataclass(slots=True, frozen=True)
class NackFrame(Frame):
    """Cumulative NACK — the ARQ baseline's in-coverage feedback."""

    missing: tuple[int, ...] = ()

    @staticmethod
    def size_for(n_seqs: int) -> int:
        """Header + 4 B per NACKed sequence number."""
        return MAC_OVERHEAD_BYTES + 8 + 4 * n_seqs


@dataclass(slots=True, frozen=True)
class SummaryFrame(Frame):
    """Epidemic-baseline summary vector: which packets the sender holds.

    ``holdings`` lists ``(flow_dst, seq)`` pairs — the classic epidemic
    routing anti-entropy advertisement [6].
    """

    holdings: tuple[tuple[NodeId, int], ...] = field(default_factory=tuple)

    @staticmethod
    def size_for(n_entries: int) -> int:
        """Header + 6 B per advertised (flow, seq) pair."""
        return MAC_OVERHEAD_BYTES + 8 + 6 * n_entries
