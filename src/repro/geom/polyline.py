"""Arc-length-parameterised polylines used as road tracks.

A :class:`Polyline` is a sequence of way-points connected by straight
segments.  Positions along it are addressed by *arc length* ``s`` measured
from the first way-point, which is the natural coordinate for car-following
models (a vehicle's longitudinal position on the road).

Closed polylines (loops) wrap arc length modulo the total length, which is
how the paper's urban circuit (Fig. 2) is modelled: cars keep driving rounds
around the same loop.
"""

from __future__ import annotations

import bisect
import math
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geom.vec import Vec2


class Polyline:
    """A piecewise-linear path through 2-D space.

    Parameters
    ----------
    points:
        At least two way-points.  Consecutive duplicates are rejected
        because they would create zero-length segments.
    closed:
        If true, the path wraps from the last point back to the first and
        arc length is taken modulo :attr:`length`.
    """

    def __init__(self, points: Iterable[Vec2], *, closed: bool = False) -> None:
        pts = list(points)
        if len(pts) < 2:
            raise GeometryError("a polyline needs at least two points")
        for a, b in zip(pts, pts[1:]):
            if a.distance_to(b) == 0.0:
                raise GeometryError(f"zero-length segment at {a}")
        if closed and pts[0].distance_to(pts[-1]) == 0.0:
            # Caller already repeated the first point; drop the duplicate.
            pts = pts[:-1]
            if len(pts) < 2:
                raise GeometryError("a closed polyline needs at least three points")
        self._points: list[Vec2] = pts
        self._closed = closed

        # Cumulative arc length at each vertex; one extra entry for the
        # closing segment of a loop.
        cums = [0.0]
        for a, b in zip(pts, pts[1:]):
            cums.append(cums[-1] + a.distance_to(b))
        if closed:
            cums.append(cums[-1] + pts[-1].distance_to(pts[0]))
        self._cumulative: list[float] = cums

    # -- basic properties ----------------------------------------------------

    @property
    def points(self) -> Sequence[Vec2]:
        """The way-points (without a repeated closing point)."""
        return tuple(self._points)

    @property
    def closed(self) -> bool:
        """Whether the path is a loop."""
        return self._closed

    @property
    def length(self) -> float:
        """Total arc length, including the closing segment for loops."""
        return self._cumulative[-1]

    @property
    def segment_count(self) -> int:
        """Number of straight segments."""
        return len(self._points) if self._closed else len(self._points) - 1

    # -- parameterisation ----------------------------------------------------

    def _wrap(self, s: float) -> float:
        """Normalise arc length into the valid domain."""
        if self._closed:
            return s % self.length
        if s < 0.0 or s > self.length:
            raise GeometryError(
                f"arc length {s!r} outside [0, {self.length!r}] on open polyline"
            )
        return s

    def _locate(self, s: float) -> tuple[int, float]:
        """Return ``(segment_index, distance_into_segment)`` for arc length *s*."""
        s = self._wrap(s)
        # bisect_right-1 gives the last vertex with cumulative <= s.
        idx = bisect.bisect_right(self._cumulative, s) - 1
        idx = min(idx, self.segment_count - 1)
        return idx, s - self._cumulative[idx]

    def _segment(self, idx: int) -> tuple[Vec2, Vec2]:
        a = self._points[idx]
        b = self._points[(idx + 1) % len(self._points)]
        return a, b

    def point_at(self, s: float) -> Vec2:
        """Position at arc length *s* from the start."""
        points = self._points
        if len(points) == 2 and not self._closed:
            # Straight track (highway, corridor): skip the segment search.
            # Bit-identical to the general path below (into = s - 0, and
            # the only cumulative entry is the segment length itself).
            s = self._wrap(s)
            return points[0].lerp(points[1], s / self._cumulative[-1])
        idx, into = self._locate(s)
        a, b = self._segment(idx)
        seg_len = a.distance_to(b)
        return a.lerp(b, into / seg_len)

    def points_at(self, s: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batch :meth:`point_at`: ``(xs, ys)`` for a whole arc array.

        Bit-identical per element to the scalar path (the batch mobility
        queries rely on it): the wrap, segment search, and lerp evaluate
        the same float64 expressions, and segment lengths reuse the same
        per-segment ``distance_to`` values.
        """
        points = self._points
        length = self._cumulative[-1]
        if self._closed:
            s = s % length
        elif s.size and (float(s.min()) < 0.0 or float(s.max()) > length):
            raise GeometryError(
                f"arc length outside [0, {length!r}] on open polyline"
            )
        if len(points) == 2 and not self._closed:
            t = s / length
            a, b = points
            return a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t
        ax, ay, bx, by, seg_len, cumulative = self._segment_arrays()
        idx = np.searchsorted(cumulative, s, side="right") - 1
        idx = np.minimum(idx, self.segment_count - 1)
        t = (s - cumulative[idx]) / seg_len[idx]
        return ax[idx] + (bx[idx] - ax[idx]) * t, ay[idx] + (by[idx] - ay[idx]) * t

    def _segment_arrays(self):
        """Per-segment endpoint/length arrays for the batch projection.

        Segment lengths are the scalar ``a.distance_to(b)`` values (libm
        hypot), not a vectorized recomputation, so the batch ``into /
        seg_len`` divides by exactly the number the scalar path uses.
        """
        cached = getattr(self, "_segments_cache", None)
        if cached is None:
            segments = [self._segment(i) for i in range(self.segment_count)]
            cached = (
                np.array([a.x for a, _ in segments]),
                np.array([a.y for a, _ in segments]),
                np.array([b.x for _, b in segments]),
                np.array([b.y for _, b in segments]),
                np.array([a.distance_to(b) for a, b in segments]),
                np.array(self._cumulative),
            )
            self._segments_cache = cached
        return cached

    def heading_at(self, s: float) -> float:
        """Travel direction (radians, CCW from +x) at arc length *s*."""
        idx, _ = self._locate(s)
        a, b = self._segment(idx)
        return (b - a).angle()

    def tangent_at(self, s: float) -> Vec2:
        """Unit tangent at arc length *s*."""
        idx, _ = self._locate(s)
        a, b = self._segment(idx)
        return (b - a).normalized()

    def turn_angle_at_vertex(self, vertex_index: int) -> float:
        """Absolute heading change (radians) at an interior vertex.

        For closed polylines every vertex is interior.  Used by the
        curvature-aware speed profile to slow vehicles down at corners.
        """
        n = len(self._points)
        if self._closed:
            prev_pt = self._points[(vertex_index - 1) % n]
            here = self._points[vertex_index % n]
            next_pt = self._points[(vertex_index + 1) % n]
        else:
            if vertex_index <= 0 or vertex_index >= n - 1:
                raise GeometryError(
                    f"vertex {vertex_index} of an open polyline has no turn angle"
                )
            prev_pt = self._points[vertex_index - 1]
            here = self._points[vertex_index]
            next_pt = self._points[vertex_index + 1]
        incoming = (here - prev_pt).angle()
        outgoing = (next_pt - here).angle()
        diff = outgoing - incoming
        # Wrap to (-pi, pi].
        while diff <= -math.pi:
            diff += 2.0 * math.pi
        while diff > math.pi:
            diff -= 2.0 * math.pi
        return abs(diff)

    def vertex_arc_length(self, vertex_index: int) -> float:
        """Arc length coordinate of the given vertex."""
        n = len(self._points)
        if self._closed:
            return self._cumulative[vertex_index % n]
        if vertex_index < 0 or vertex_index >= n:
            raise GeometryError(f"vertex index {vertex_index} out of range")
        return self._cumulative[vertex_index]

    def distance_along(self, s_from: float, s_to: float) -> float:
        """Forward travel distance from ``s_from`` to ``s_to``.

        On loops this is always taken in the direction of travel and lies in
        ``[0, length)``; on open paths it is simply the difference and may be
        negative.
        """
        if self._closed:
            return (s_to - s_from) % self.length
        return s_to - s_from

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def rectangle(width: float, height: float, *, origin: Vec2 = Vec2(0.0, 0.0)) -> Polyline:
        """A closed rectangular loop (counter-clockwise from *origin*).

        Convenience used by the urban-testbed track builder.
        """
        if width <= 0.0 or height <= 0.0:
            raise GeometryError("rectangle dimensions must be positive")
        o = origin
        return Polyline(
            [
                o,
                Vec2(o.x + width, o.y),
                Vec2(o.x + width, o.y + height),
                Vec2(o.x, o.y + height),
            ],
            closed=True,
        )

    @staticmethod
    def straight(length: float, *, origin: Vec2 = Vec2(0.0, 0.0), heading_rad: float = 0.0) -> Polyline:
        """An open straight path — the highway drive-thru scenario."""
        if length <= 0.0:
            raise GeometryError("straight length must be positive")
        end = origin + Vec2(math.cos(heading_rad), math.sin(heading_rad)) * length
        return Polyline([origin, end])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "closed" if self._closed else "open"
        return f"Polyline({len(self._points)} pts, {kind}, length={self.length:.1f} m)"
