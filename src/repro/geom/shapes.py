"""Axis-aligned rectangles used as building footprints."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GeometryError
from repro.geom.vec import Vec2


@dataclass(frozen=True)
class AxisRect:
    """An axis-aligned rectangle (building footprint).

    Attributes are the min/max corners; degenerate (zero-area) rectangles
    are rejected.
    """

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_min >= self.x_max or self.y_min >= self.y_max:
            raise GeometryError(f"degenerate rectangle {self!r}")

    @property
    def center(self) -> Vec2:
        """Geometric centre."""
        return Vec2((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    def contains(self, point: Vec2) -> bool:
        """Whether *point* lies inside or on the boundary."""
        return (
            self.x_min <= point.x <= self.x_max
            and self.y_min <= point.y <= self.y_max
        )

    def intersects_segment(self, a: Vec2, b: Vec2) -> bool:
        """Whether the segment ``a→b`` passes through the rectangle.

        Liang–Barsky clipping: the segment intersects iff the parametric
        interval clipped against all four slabs stays non-empty.
        """
        dx = b.x - a.x
        dy = b.y - a.y
        t0, t1 = 0.0, 1.0
        for p, q in (
            (-dx, a.x - self.x_min),
            (dx, self.x_max - a.x),
            (-dy, a.y - self.y_min),
            (dy, self.y_max - a.y),
        ):
            if p == 0.0:
                if q < 0.0:
                    return False  # parallel and outside this slab
                continue
            t = q / p
            if p < 0.0:
                if t > t1:
                    return False
                t0 = max(t0, t)
            else:
                if t < t0:
                    return False
                t1 = min(t1, t)
        return t0 <= t1
