"""Immutable 2-D vector."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Vec2:
    """An immutable 2-D point/vector in metres.

    Supports the usual vector arithmetic.  Being frozen and hashable, it can
    be used as a dict key and safely shared between components.

    Examples
    --------
    >>> (Vec2(1, 2) + Vec2(3, 4)).x
    4
    >>> Vec2(3, 4).norm()
    5.0
    """

    x: float
    y: float

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: Vec2) -> Vec2:
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: Vec2) -> Vec2:
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> Vec2:
        return Vec2(self.x * scalar, self.y * scalar)

    def __rmul__(self, scalar: float) -> Vec2:
        return self.__mul__(scalar)

    def __truediv__(self, scalar: float) -> Vec2:
        return Vec2(self.x / scalar, self.y / scalar)

    def __neg__(self) -> Vec2:
        return Vec2(-self.x, -self.y)

    # -- metrics ------------------------------------------------------------

    def dot(self, other: Vec2) -> float:
        """Dot product with *other*."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: Vec2) -> float:
        """Z-component of the 3-D cross product (signed area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length."""
        return math.hypot(self.x, self.y)

    def norm_squared(self) -> float:
        """Squared Euclidean length (avoids the sqrt in hot paths)."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: Vec2) -> float:
        """Euclidean distance to *other*."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def normalized(self) -> Vec2:
        """Unit vector in the same direction.

        Raises
        ------
        ZeroDivisionError
            If this is the zero vector.
        """
        n = self.norm()
        if n == 0.0:
            raise ZeroDivisionError("cannot normalise the zero vector")
        return Vec2(self.x / n, self.y / n)

    def perpendicular(self) -> Vec2:
        """The vector rotated +90° (counter-clockwise)."""
        return Vec2(-self.y, self.x)

    def angle(self) -> float:
        """Heading in radians, measured counter-clockwise from +x."""
        return math.atan2(self.y, self.x)

    def rotated(self, angle_rad: float) -> Vec2:
        """This vector rotated counter-clockwise by *angle_rad*."""
        c, s = math.cos(angle_rad), math.sin(angle_rad)
        return Vec2(c * self.x - s * self.y, s * self.x + c * self.y)

    def lerp(self, other: Vec2, t: float) -> Vec2:
        """Linear interpolation: ``self`` at ``t=0``, *other* at ``t=1``."""
        return Vec2(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )

    @staticmethod
    def zero() -> Vec2:
        """The origin."""
        return Vec2(0.0, 0.0)
