"""2-D geometry substrate: vectors and arc-length-parameterised polylines.

Mobility models express vehicle positions as points along a road *track*
(a :class:`Polyline`), while the radio layer needs Euclidean distances
between :class:`Vec2` positions.  This package provides both, with no
dependencies beyond the standard library.
"""

from repro.geom.vec import Vec2
from repro.geom.polyline import Polyline

__all__ = ["Vec2", "Polyline"]
