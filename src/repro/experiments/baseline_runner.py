"""Urban-testbed rounds with baseline protocols instead of C-ARQ.

Reuses the exact mobility, channel and AP wiring of
:func:`repro.experiments.scenario.build_urban_round`, substituting the
vehicle (and for the ARQ baseline, the AP) implementation, so that every
comparison is apples-to-apples: same seeds → same trajectories and same
channel realisation structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.arq import ArqAccessPoint, ArqVehicleNode
from repro.baselines.epidemic import EpidemicVehicleNode
from repro.baselines.nocoop import PassiveVehicleNode
from repro.errors import ConfigurationError
from repro.mac.frames import NodeId
from repro.mac.medium import Medium
from repro.mobility.static import StaticMobility
from repro.mobility.urban import UrbanTestbed, urban_loop
from repro.net.ap import AccessPoint, FlowConfig
from repro.experiments.scenario import (
    AP_NODE_ID,
    UrbanScenarioConfig,
    build_channel,
    build_platoon_mobility,
)
from repro.sim import Simulator
from repro.trace.capture import TraceCollector
from repro.trace.matrix import ReceptionMatrix

#: Vehicle classes by baseline mode.
BASELINE_MODES = ("nocoop", "arq", "epidemic")


@dataclass
class BaselineRoundContext:
    """One baseline round, ready to run (mirrors ``RoundContext``)."""

    sim: Simulator
    medium: Medium
    capture: TraceCollector
    ap: AccessPoint
    cars: dict[NodeId, object]
    config: UrbanScenarioConfig
    mode: str

    def run(self) -> None:
        """Execute the round to its configured duration."""
        self.sim.run(until=self.config.round_duration_s)


def build_baseline_round(
    cfg: UrbanScenarioConfig,
    round_index: int,
    mode: str,
    *,
    testbed: UrbanTestbed | None = None,
) -> BaselineRoundContext:
    """Build one urban round running a baseline protocol.

    Parameters
    ----------
    mode:
        ``"nocoop"``, ``"arq"`` or ``"epidemic"``.

    Raises
    ------
    ConfigurationError
        For an unknown mode.
    """
    if mode not in BASELINE_MODES:
        raise ConfigurationError(
            f"unknown baseline mode {mode!r}; choose from {BASELINE_MODES}"
        )
    from repro.experiments.scenario import _round_seed  # same seeding as C-ARQ

    sim = Simulator(seed=_round_seed(cfg.seed, round_index))
    tb = testbed if testbed is not None else urban_loop()
    capture = TraceCollector()
    medium = Medium(sim, build_channel(cfg, sim, tb), trace=capture)
    mobilities = build_platoon_mobility(cfg, sim, tb)
    car_ids = cfg.car_ids()
    flows = [
        FlowConfig(
            destination=car_id,
            packet_rate_hz=cfg.packet_rate_hz,
            payload_bytes=cfg.payload_bytes,
        )
        for car_id in car_ids
    ]
    ap_class = ArqAccessPoint if mode == "arq" else AccessPoint
    ap = ap_class(
        sim,
        medium,
        AP_NODE_ID,
        StaticMobility(tb.ap_position),
        cfg.radio.ap_radio(),
        sim.streams.get("ap"),
        flows,
    )
    cars: dict[NodeId, object] = {}
    for car_id, mobility in zip(car_ids, mobilities):
        rng = sim.streams.get(f"car-{car_id}")
        common_args = (sim, medium, car_id, mobility, cfg.radio.car_radio(), rng)
        if mode == "nocoop":
            car = PassiveVehicleNode(*common_args, AP_NODE_ID, name=f"car-{car_id}")
        elif mode == "arq":
            car = ArqVehicleNode(*common_args, AP_NODE_ID, name=f"car-{car_id}")
        else:
            car = EpidemicVehicleNode(
                *common_args,
                AP_NODE_ID,
                coverage_timeout_s=cfg.carq.coverage_timeout_s,
                name=f"car-{car_id}",
            )
        cars[car_id] = car
    ap.start()
    for car in cars.values():
        car.start()
    return BaselineRoundContext(
        sim=sim, medium=medium, capture=capture, ap=ap, cars=cars, config=cfg,
        mode=mode,
    )


def collect_baseline_matrices(
    ctx: BaselineRoundContext,
) -> dict[NodeId, ReceptionMatrix]:
    """Per-flow reception matrices of a finished baseline round."""
    car_ids = list(ctx.cars)
    matrices: dict[NodeId, ReceptionMatrix] = {}
    for car_id, car in ctx.cars.items():
        direct_by_car = {
            observer: ctx.capture.delivered_seqs(observer, car_id)
            for observer in car_ids
        }
        recovered = set(car.state.recovered)  # type: ignore[attr-defined]
        matrix = ReceptionMatrix.build(car_id, direct_by_car, recovered)
        if matrix is not None:
            matrices[car_id] = matrix
    return matrices
