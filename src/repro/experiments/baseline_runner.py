"""Urban-testbed rounds with baseline protocols (compatibility front).

Baselines are no longer a separate wiring: the protocol is the ``mode``
field of :class:`~repro.scenarios.urban.UrbanScenarioConfig`, dispatched
through :mod:`repro.scenarios.modes`, so every comparison is
apples-to-apples by construction — same seeds → same trajectories and
same channel realisation structure.  The helpers here keep the historical
``build_baseline_round(cfg, index, mode)`` call shape working.
"""

from __future__ import annotations

from dataclasses import replace

from repro.mac.frames import NodeId
from repro.mobility.urban import UrbanTestbed
from repro.scenarios.common import collect_matrices
from repro.scenarios.modes import BASELINE_MODES, validate_mode
from repro.scenarios.urban import RoundContext, UrbanScenarioConfig, build_urban_round
from repro.trace.matrix import ReceptionMatrix

#: Baseline rounds are plain :class:`RoundContext` objects (the ``mode``
#: field says which protocol ran); the old name remains as an alias.
BaselineRoundContext = RoundContext

__all__ = [
    "BASELINE_MODES",
    "BaselineRoundContext",
    "build_baseline_round",
    "collect_baseline_matrices",
]


def build_baseline_round(
    cfg: UrbanScenarioConfig,
    round_index: int,
    mode: str,
    *,
    testbed: UrbanTestbed | None = None,
) -> RoundContext:
    """Build one urban round running a baseline protocol.

    Parameters
    ----------
    mode:
        ``"nocoop"``, ``"arq"`` or ``"epidemic"``.

    Raises
    ------
    ConfigurationError
        For a mode outside :data:`BASELINE_MODES` — including ``carq``,
        which this baseline-only entry point has always refused (use
        :func:`~repro.scenarios.urban.build_urban_round` directly).
    """
    validate_mode(mode, BASELINE_MODES)
    return build_urban_round(replace(cfg, mode=mode), round_index, testbed=testbed)


def collect_baseline_matrices(ctx: RoundContext) -> dict[NodeId, ReceptionMatrix]:
    """Per-flow reception matrices of a finished baseline round."""
    return collect_matrices(ctx.capture, ctx.cars)
