"""Highway drive-thru rounds (compatibility front).

The implementation lives in :mod:`repro.scenarios.highway`, the highway
plugin of the scenario registry.  This module re-exports the historical
names so existing imports keep working.
"""

from __future__ import annotations

from repro.scenarios.common import AP_NODE_ID
from repro.scenarios.highway import (
    HighwayConfig,
    HighwayRoundContext,
    build_highway_round,
    collect_highway_matrices,
    run_highway_experiment,
)

__all__ = [
    "AP_NODE_ID",
    "HighwayConfig",
    "HighwayRoundContext",
    "build_highway_round",
    "collect_highway_matrices",
    "run_highway_experiment",
]
