"""Highway drive-thru rounds (after Ott & Kutscher [1]).

The paper motivates C-ARQ with highway measurements: 50–60 % losses for a
car passing an AP at speed.  This scenario reproduces that geometry — a
straight road, an AP off the roadside, a platoon passing once at a chosen
speed — and is swept over speed by ``benchmarks/bench_highway_speed.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import CarqConfig
from repro.core.vehicle import VehicleNode
from repro.errors import ConfigurationError
from repro.mac.frames import NodeId
from repro.mac.medium import Medium
from repro.mobility.highway import HighwayScenario, highway_scenario
from repro.mobility.path import PathMobility
from repro.mobility.static import StaticMobility
from repro.net.ap import AccessPoint, FlowConfig
from repro.radio.channel import Channel
from repro.radio.fading import RicianFading
from repro.radio.pathloss import TwoRayGroundPathLoss
from repro.radio.shadowing import (
    CompositeShadowing,
    GudmundsonShadowing,
    TemporalTxShadowing,
)
from repro.experiments.scenario import AP_NODE_ID, RadioEnvironment
from repro.sim import Simulator
from repro.trace.capture import TraceCollector
from repro.trace.matrix import ReceptionMatrix


#: Highway radio defaults: the 11 Mb/s CCK rate — the setting where Ott &
#: Kutscher [1] measured 50–60 % drive-thru losses — with heavier scatter
#: (passing trucks, no street canyon to guide the signal).
_HIGHWAY_RADIO = RadioEnvironment(
    rate_name="dsss-11",
    shadowing_sigma_db=5.0,
    common_shadowing_sigma_db=5.0,
    rician_k=1.5,
)


@dataclass(frozen=True)
class HighwayConfig:
    """One highway drive-thru experiment.

    Attributes
    ----------
    speed_ms:
        Platoon speed (constant on a highway).
    n_cars / gap_m:
        Platoon composition; highway gaps scale with speed in reality but
        a fixed headway keeps the comparison across speeds clean.
    road_length_m / ap_offset_m:
        Geometry (see :func:`repro.mobility.highway.highway_scenario`).
    packet_rate_hz / payload_bytes:
        Per-car flow workload.
    seed / rounds:
        Experiment repetition control.
    """

    speed_ms: float = 30.0
    n_cars: int = 3
    gap_m: float = 35.0
    road_length_m: float = 4000.0
    ap_offset_m: float = 20.0
    packet_rate_hz: float = 10.0
    payload_bytes: int = 1000
    seed: int = 404
    rounds: int = 10
    radio: RadioEnvironment = field(default_factory=lambda: _HIGHWAY_RADIO)
    # Highway windows leave hundreds of packets missing: the per-packet
    # REQUEST of the urban prototype is too slow, so the highway scenario
    # uses the paper's §3.3 batched-REQUEST optimisation by default.
    carq: CarqConfig = field(
        default_factory=lambda: CarqConfig(batch_requests=True, max_batch=64)
    )

    def __post_init__(self) -> None:
        if self.speed_ms <= 0.0:
            raise ConfigurationError("speed must be positive")
        if self.n_cars < 1:
            raise ConfigurationError("need at least one car")
        if self.gap_m <= 0.0:
            raise ConfigurationError("gap must be positive")

    @property
    def round_duration_s(self) -> float:
        """Time for the whole platoon to traverse the road, plus slack for
        the dark-area recovery after leaving coverage."""
        travel = (self.road_length_m + self.n_cars * self.gap_m) / self.speed_ms
        return travel + 60.0


@dataclass
class HighwayRoundContext:
    """One built highway round."""

    sim: Simulator
    capture: TraceCollector
    scenario: HighwayScenario
    ap: AccessPoint
    cars: dict[NodeId, VehicleNode]
    config: HighwayConfig

    def run(self) -> None:
        """Execute the drive-thru."""
        self.sim.run(until=self.config.round_duration_s)


def build_highway_round(cfg: HighwayConfig, round_index: int) -> HighwayRoundContext:
    """Wire one highway pass with C-ARQ vehicles."""
    sim = Simulator(seed=cfg.seed + 6007 * (round_index + 1))
    scenario = highway_scenario(
        road_length=cfg.road_length_m, ap_offset=cfg.ap_offset_m
    )
    capture = TraceCollector()
    # Highway propagation: two-ray ground (flat open road), no buildings.
    channel = Channel(
        pathloss=TwoRayGroundPathLoss(tx_height_m=6.0, rx_height_m=1.5),
        shadowing=CompositeShadowing(
            [
                GudmundsonShadowing(
                    sim.streams.get("shadowing"),
                    sigma_db=cfg.radio.shadowing_sigma_db,
                    decorrelation_distance_m=25.0,
                ),
                TemporalTxShadowing(
                    sim.streams.get("shadowing-common"),
                    sigma_db=cfg.radio.common_shadowing_sigma_db,
                    tau_s=cfg.radio.common_shadowing_tau_s,
                    hub=AP_NODE_ID,
                ),
            ]
        ),
        fading=RicianFading(sim.streams.get("fading"), k_factor=cfg.radio.rician_k),
        rng=sim.streams.get("channel"),
    )
    medium = Medium(sim, channel, trace=capture)
    car_ids = [NodeId(i + 1) for i in range(cfg.n_cars)]
    flows = [
        FlowConfig(
            destination=car_id,
            packet_rate_hz=cfg.packet_rate_hz,
            payload_bytes=cfg.payload_bytes,
        )
        for car_id in car_ids
    ]
    ap = AccessPoint(
        sim,
        medium,
        AP_NODE_ID,
        StaticMobility(scenario.ap_position),
        cfg.radio.ap_radio(),
        sim.streams.get("ap"),
        flows,
    )
    cars: dict[NodeId, VehicleNode] = {}
    for index, car_id in enumerate(car_ids):
        mobility = PathMobility(
            scenario.track,
            cfg.speed_ms,
            start_arc_length=0.0,
            start_time=index * cfg.gap_m / cfg.speed_ms,
        )
        cars[car_id] = VehicleNode(
            sim,
            medium,
            car_id,
            mobility,
            cfg.radio.car_radio(),
            sim.streams.get(f"car-{car_id}"),
            AP_NODE_ID,
            cfg.carq,
            name=f"car-{car_id}",
        )
    ap.start()
    for car in cars.values():
        car.start()
    return HighwayRoundContext(
        sim=sim, capture=capture, scenario=scenario, ap=ap, cars=cars, config=cfg
    )


def collect_highway_matrices(
    ctx: HighwayRoundContext,
) -> dict[NodeId, ReceptionMatrix]:
    """Per-car reception matrices of one finished highway round."""
    car_ids = list(ctx.cars)
    matrices: dict[NodeId, ReceptionMatrix] = {}
    for car_id, car in ctx.cars.items():
        direct_by_car = {
            observer: ctx.capture.delivered_seqs(observer, car_id)
            for observer in car_ids
        }
        matrix = ReceptionMatrix.build(
            car_id, direct_by_car, set(car.protocol.state.recovered)
        )
        if matrix is not None:
            matrices[car_id] = matrix
    return matrices


def run_highway_experiment(cfg: HighwayConfig) -> list[dict[NodeId, ReceptionMatrix]]:
    """Run all rounds; returns per-round matrices per car."""
    results = []
    for index in range(cfg.rounds):
        ctx = build_highway_round(cfg, index)
        ctx.run()
        results.append(collect_highway_matrices(ctx))
    return results
