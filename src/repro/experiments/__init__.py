"""Experiment harness: the paper testbed, sweeps, compatibility fronts.

Scenario wiring lives in the plugin registry (:mod:`repro.scenarios`);
the modules here re-export it under the historical names and add the
paper-specific layers:

* :mod:`repro.experiments.scenario` / :mod:`~repro.experiments.highway`
  / :mod:`~repro.experiments.multi_ap` /
  :mod:`~repro.experiments.baseline_runner` — compatibility fronts over
  the urban, highway and multi-AP plugins (baselines are the ``mode``
  config field now);
* :mod:`repro.experiments.testbed` — the paper's urban experiment
  (3 cars, 30 rounds) and its published reference numbers;
* :mod:`repro.experiments.runner` — multi-round execution and result
  aggregation;
* :mod:`repro.experiments.sweeps` — parameter sweeps (speed, platoon
  size, bit-rate, hello period), executed through the campaign engine
  (:mod:`repro.campaign`).
"""

from repro.experiments.scenario import (
    PlatoonConfig,
    RadioEnvironment,
    RoundContext,
    UrbanScenarioConfig,
    build_urban_round,
)
from repro.experiments.runner import (
    ExperimentResult,
    RoundOutcome,
    collect_round,
    run_urban_experiment,
)
from repro.experiments.testbed import (
    PAPER_TABLE1,
    paper_testbed_config,
)

__all__ = [
    "ExperimentResult",
    "PAPER_TABLE1",
    "PlatoonConfig",
    "RadioEnvironment",
    "RoundContext",
    "RoundOutcome",
    "UrbanScenarioConfig",
    "build_urban_round",
    "collect_round",
    "paper_testbed_config",
    "run_urban_experiment",
]
