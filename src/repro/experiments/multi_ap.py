"""The §6 future-work study: file download across multiple APs.

"Even more important is to study how the presented loss reduction can
reduce the number of APs that a vehicular node needs to visit to download
a file."  This experiment answers that: a platoon drives a long road with
infostations every ``ap_spacing_m`` metres, each cyclically broadcasting
the *B* blocks of a file per car; we measure how many APs each car must
pass before holding the complete file — with cooperative recovery in the
gaps, versus direct reception only.

The no-cooperation reference is computed *post-hoc from the same run*
(the direct-reception times recorded in the trace), so both numbers share
one channel realisation and the comparison is paired.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.config import CarqConfig
from repro.core.vehicle import VehicleNode
from repro.errors import ConfigurationError
from repro.geom import Vec2
from repro.mac.frames import NodeId
from repro.mac.medium import Medium
from repro.mobility.path import PathMobility
from repro.mobility.static import StaticMobility
from repro.geom import Polyline
from repro.net.ap import AccessPoint, FlowConfig
from repro.radio.channel import Channel
from repro.radio.fading import RicianFading
from repro.radio.pathloss import LogDistancePathLoss
from repro.radio.shadowing import GudmundsonShadowing
from repro.experiments.scenario import RadioEnvironment
from repro.sim import Simulator
from repro.trace.capture import TraceCollector


@dataclass(frozen=True)
class MultiApConfig:
    """The multi-AP file-download road."""

    road_length_m: float = 8000.0
    ap_spacing_m: float = 800.0
    ap_offset_m: float = 15.0
    file_blocks: int = 250
    speed_ms: float = 15.0
    n_cars: int = 3
    gap_m: float = 25.0
    packet_rate_hz: float = 10.0
    payload_bytes: int = 1000
    seed: int = 77
    rounds: int = 5
    radio: RadioEnvironment = field(default_factory=RadioEnvironment)
    carq: CarqConfig = field(default_factory=CarqConfig)

    def __post_init__(self) -> None:
        if self.ap_spacing_m <= 0.0 or self.road_length_m <= self.ap_spacing_m:
            raise ConfigurationError("road must be longer than the AP spacing")
        if self.file_blocks <= 0:
            raise ConfigurationError("file needs at least one block")

    def ap_positions(self) -> list[Vec2]:
        """Infostation positions along the road."""
        count = int(self.road_length_m // self.ap_spacing_m)
        return [
            Vec2(self.ap_spacing_m * (i + 0.5), self.ap_offset_m)
            for i in range(count)
        ]

    @property
    def round_duration_s(self) -> float:
        """Full traversal of the road by the last car."""
        return (self.road_length_m + self.n_cars * self.gap_m) / self.speed_ms


@dataclass(frozen=True)
class DownloadOutcome:
    """Completion result for one car in one round.

    ``aps_visited`` is the number of infostations passed when the file
    became complete (``math.inf`` if it never completed on this road).
    """

    car: NodeId
    aps_visited_coop: float
    aps_visited_direct: float
    completion_time_coop: float | None
    completion_time_direct: float | None


def _aps_passed(cfg: MultiApConfig, car_index: int, time: float | None) -> float:
    """How many APs the car has passed by *time* (∞ when never done)."""
    if time is None:
        return math.inf
    start_delay = car_index * cfg.gap_m / cfg.speed_ms
    position = max(0.0, (time - start_delay) * cfg.speed_ms)
    return sum(1 for ap in cfg.ap_positions() if ap.x <= position)


def run_multi_ap_round(cfg: MultiApConfig, round_index: int) -> list[DownloadOutcome]:
    """Simulate one traversal; returns one outcome per car."""
    sim = Simulator(seed=cfg.seed + 4099 * (round_index + 1))
    track = Polyline.straight(cfg.road_length_m)
    capture = TraceCollector()
    channel = Channel(
        pathloss=LogDistancePathLoss(
            exponent=cfg.radio.pathloss_exponent,
            reference_loss_db=cfg.radio.reference_loss_db,
        ),
        shadowing=GudmundsonShadowing(
            sim.streams.get("shadowing"),
            sigma_db=cfg.radio.shadowing_sigma_db + 2.0,
            decorrelation_distance_m=cfg.radio.shadowing_decorrelation_m,
        ),
        fading=RicianFading(sim.streams.get("fading"), k_factor=cfg.radio.rician_k),
        rng=sim.streams.get("channel"),
    )
    medium = Medium(sim, channel, trace=capture)
    car_ids = [NodeId(i + 1) for i in range(cfg.n_cars)]
    ap_ids = [NodeId(200 + i) for i in range(len(cfg.ap_positions()))]
    flows = [
        FlowConfig(
            destination=car_id,
            packet_rate_hz=cfg.packet_rate_hz,
            payload_bytes=cfg.payload_bytes,
            blocks=cfg.file_blocks,
        )
        for car_id in car_ids
    ]
    for ap_id, position in zip(ap_ids, cfg.ap_positions()):
        ap = AccessPoint(
            sim,
            medium,
            ap_id,
            StaticMobility(position),
            cfg.radio.ap_radio(),
            sim.streams.get(f"ap-{ap_id}"),
            flows,
            name=f"ap-{ap_id}",
        )
        ap.start()
    cars: dict[NodeId, VehicleNode] = {}
    for index, car_id in enumerate(car_ids):
        mobility = PathMobility(
            track,
            cfg.speed_ms,
            start_time=index * cfg.gap_m / cfg.speed_ms,
        )
        car = VehicleNode(
            sim,
            medium,
            car_id,
            mobility,
            cfg.radio.car_radio(),
            sim.streams.get(f"car-{car_id}"),
            ap_ids,
            cfg.carq,
            name=f"car-{car_id}",
        )
        cars[car_id] = car
        car.start()
    sim.run(until=cfg.round_duration_s)

    outcomes = []
    for index, car_id in enumerate(car_ids):
        car = cars[car_id]
        direct_times = sorted(
            capture.delivery_time(car_id, car_id, seq)
            for seq in capture.delivered_seqs(car_id, car_id)
            if 1 <= seq <= cfg.file_blocks
        )
        coop_events = [
            (time, seq)
            for seq, time in car.protocol.state.recovered.items()
            if 1 <= seq <= cfg.file_blocks
        ]
        direct_events = [
            (capture.delivery_time(car_id, car_id, seq), seq)
            for seq in capture.delivered_seqs(car_id, car_id)
            if 1 <= seq <= cfg.file_blocks
        ]
        completion_direct = _completion_time(direct_events, cfg.file_blocks)
        completion_coop = _completion_time(direct_events + coop_events, cfg.file_blocks)
        outcomes.append(
            DownloadOutcome(
                car=car_id,
                aps_visited_coop=_aps_passed(cfg, index, completion_coop),
                aps_visited_direct=_aps_passed(cfg, index, completion_direct),
                completion_time_coop=completion_coop,
                completion_time_direct=completion_direct,
            )
        )
    return outcomes


def _completion_time(events: list[tuple[float, int]], blocks: int) -> float | None:
    """Instant at which the set of distinct blocks first reaches *blocks*."""
    held: set[int] = set()
    for time, seq in sorted(events):
        held.add(seq)
        if len(held) >= blocks:
            return time
    return None


def run_multi_ap_experiment(cfg: MultiApConfig) -> list[list[DownloadOutcome]]:
    """All rounds of the multi-AP study."""
    return [run_multi_ap_round(cfg, index) for index in range(cfg.rounds)]
