"""The §6 multi-AP file-download study (compatibility front).

The implementation lives in :mod:`repro.scenarios.multi_ap`, the
``multi_ap`` plugin of the scenario registry.  This module re-exports the
historical names so existing imports keep working.
"""

from __future__ import annotations

from repro.scenarios.multi_ap import (
    DownloadOutcome,
    MultiApConfig,
    MultiApRoundContext,
    build_multi_ap_round,
    collect_download_outcomes,
    run_multi_ap_experiment,
    run_multi_ap_round,
)

__all__ = [
    "DownloadOutcome",
    "MultiApConfig",
    "MultiApRoundContext",
    "build_multi_ap_round",
    "collect_download_outcomes",
    "run_multi_ap_experiment",
    "run_multi_ap_round",
]
