"""Parameter sweeps over the urban and highway scenarios.

Each sweep returns plain result rows so benchmarks and examples can print
them directly.  Sweeps address the paper's open questions (§6): how the
gain scales with platoon size, what the bit-rate head-room is, and how
speed (the highway motivation, [1]) changes the picture.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import CarqConfig
from repro.errors import ConfigurationError
from repro.experiments.highway import HighwayConfig, run_highway_experiment
from repro.experiments.runner import run_urban_experiment
from repro.experiments.scenario import UrbanScenarioConfig


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: loss fractions aggregated over cars and rounds."""

    parameter: float | str
    tx_by_ap_mean: float
    lost_before_fraction: float
    lost_after_fraction: float

    @property
    def reduction_fraction(self) -> float:
        """Relative loss reduction achieved by cooperation."""
        if self.lost_before_fraction == 0.0:
            return 0.0
        return 1.0 - self.lost_after_fraction / self.lost_before_fraction


def _aggregate(matrices_by_round, parameter) -> SweepPoint:
    tx = before = after = 0
    n = 0
    for round_matrices in matrices_by_round:
        for matrix in round_matrices.values():
            tx += matrix.tx_by_ap
            before += matrix.lost_before_coop
            after += matrix.lost_after_coop
            n += 1
    if n == 0 or tx == 0:
        raise ConfigurationError(
            f"sweep point {parameter!r} produced no reception data"
        )
    return SweepPoint(
        parameter=parameter,
        tx_by_ap_mean=tx / n,
        lost_before_fraction=before / tx,
        lost_after_fraction=after / tx,
    )


def platoon_size_sweep(
    base: UrbanScenarioConfig, sizes: list[int], *, rounds: int = 8
) -> list[SweepPoint]:
    """Urban after-coop loss vs number of cars in the platoon.

    More cars = more diversity = lower joint loss; the marginal gain
    shrinks, which is the cooperator-selection motivation (§6).
    """
    points = []
    for size in sizes:
        styles = tuple(
            ("normal", "timid", "aggressive")[i % 3] for i in range(size)
        )
        cfg = replace(
            base,
            rounds=rounds,
            platoon=replace(base.platoon, n_cars=size, driver_styles=styles),
        )
        result = run_urban_experiment(cfg)
        points.append(_aggregate(result.matrices_by_round(), size))
    return points


def bitrate_sweep(
    base: UrbanScenarioConfig, rate_names: list[str], *, rounds: int = 8
) -> list[SweepPoint]:
    """Urban losses vs AP bit rate.

    Higher rates shrink the reliable coverage area; the sweep quantifies
    the paper's closing question of whether C-ARQ "can allow to increment
    the bit rate used by the APs".
    """
    points = []
    for rate_name in rate_names:
        cfg = replace(
            base, rounds=rounds, radio=replace(base.radio, rate_name=rate_name)
        )
        result = run_urban_experiment(cfg)
        points.append(_aggregate(result.matrices_by_round(), rate_name))
    return points


def hello_period_sweep(
    base: UrbanScenarioConfig, periods_s: list[float], *, rounds: int = 8
) -> list[SweepPoint]:
    """Urban after-coop loss vs HELLO beacon period.

    Slower beacons delay cooperator discovery and stale the responder
    ordering; the sweep shows how much slack the 1 s default has.
    """
    points = []
    for period in periods_s:
        cfg = replace(
            base,
            rounds=rounds,
            carq=replace(base.carq, hello_period_s=period),
        )
        result = run_urban_experiment(cfg)
        points.append(_aggregate(result.matrices_by_round(), period))
    return points


def speed_sweep(
    base: HighwayConfig, speeds_ms: list[float]
) -> list[SweepPoint]:
    """Highway losses vs pass speed (the drive-thru motivation, [1])."""
    points = []
    for speed in speeds_ms:
        cfg = replace(base, speed_ms=speed)
        matrices_by_round = run_highway_experiment(cfg)
        points.append(_aggregate(matrices_by_round, speed))
    return points
