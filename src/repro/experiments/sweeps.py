"""Parameter sweeps over the urban and highway scenarios.

Each sweep returns plain result rows so benchmarks and examples can print
them directly.  Sweeps address the paper's open questions (§6): how the
gain scales with platoon size, what the bit-rate head-room is, and how
speed (the highway motivation, [1]) changes the picture.

Since the campaign engine landed, every sweep here is a thin front over
it: a ``*_spec`` builder turns the sweep into a declarative
:class:`~repro.campaign.spec.CampaignSpec`, and the legacy entry points
execute that spec through :func:`~repro.campaign.executor.run_campaign`
into an in-memory store.  The ``repro campaign`` CLI runs the very same
specs against an on-disk store, with worker fan-out and resume — and
produces bit-identical :class:`SweepPoint` values, because task seeds
depend only on the spec, never on scheduling (see
:mod:`repro.campaign.seeding`).
"""

from __future__ import annotations

from repro.campaign.executor import run_campaign
from repro.campaign.report import SweepPoint, sweep_points
from repro.campaign.spec import CampaignSpec, GridAxis, GridPoint, axis, config_to_dict
from repro.campaign.store import MemoryStore
from repro.experiments.highway import HighwayConfig
from repro.experiments.scenario import UrbanScenarioConfig
from repro.scenarios.urban import platoon_size_points

__all__ = [
    "SweepPoint",
    "bitrate_spec",
    "bitrate_sweep",
    "hello_period_spec",
    "hello_period_sweep",
    "platoon_size_spec",
    "platoon_size_sweep",
    "speed_spec",
    "speed_sweep",
]


def _run(spec: CampaignSpec) -> list[SweepPoint]:
    """Execute a spec in-process and fold it into sweep points."""
    store = MemoryStore()
    run_campaign(spec, store, workers=1)
    return sweep_points(store, spec)


def platoon_size_spec(
    base: UrbanScenarioConfig, sizes: list[int], *, rounds: int = 8
) -> CampaignSpec:
    """Campaign spec of :func:`platoon_size_sweep`."""
    points = tuple(
        GridPoint.from_dict(p) for p in platoon_size_points(sizes)
    )
    return CampaignSpec(
        name="platoon-size",
        scenario="urban",
        seed=base.seed,
        rounds=rounds,
        base=config_to_dict(base),
        axes=(GridAxis(name="platoon.n_cars", points=points),),
    )


def platoon_size_sweep(
    base: UrbanScenarioConfig, sizes: list[int], *, rounds: int = 8
) -> list[SweepPoint]:
    """Urban after-coop loss vs number of cars in the platoon.

    More cars = more diversity = lower joint loss; the marginal gain
    shrinks, which is the cooperator-selection motivation (§6).
    """
    return _run(platoon_size_spec(base, sizes, rounds=rounds))


def bitrate_spec(
    base: UrbanScenarioConfig, rate_names: list[str], *, rounds: int = 8
) -> CampaignSpec:
    """Campaign spec of :func:`bitrate_sweep`."""
    return CampaignSpec(
        name="bitrate",
        scenario="urban",
        seed=base.seed,
        rounds=rounds,
        base=config_to_dict(base),
        axes=(axis("radio.rate_name", rate_names),),
    )


def bitrate_sweep(
    base: UrbanScenarioConfig, rate_names: list[str], *, rounds: int = 8
) -> list[SweepPoint]:
    """Urban losses vs AP bit rate.

    Higher rates shrink the reliable coverage area; the sweep quantifies
    the paper's closing question of whether C-ARQ "can allow to increment
    the bit rate used by the APs".
    """
    return _run(bitrate_spec(base, rate_names, rounds=rounds))


def hello_period_spec(
    base: UrbanScenarioConfig, periods_s: list[float], *, rounds: int = 8
) -> CampaignSpec:
    """Campaign spec of :func:`hello_period_sweep`."""
    return CampaignSpec(
        name="hello-period",
        scenario="urban",
        seed=base.seed,
        rounds=rounds,
        base=config_to_dict(base),
        axes=(axis("carq.hello_period_s", periods_s),),
    )


def hello_period_sweep(
    base: UrbanScenarioConfig, periods_s: list[float], *, rounds: int = 8
) -> list[SweepPoint]:
    """Urban after-coop loss vs HELLO beacon period.

    Slower beacons delay cooperator discovery and stale the responder
    ordering; the sweep shows how much slack the 1 s default has.
    """
    return _run(hello_period_spec(base, periods_s, rounds=rounds))


def speed_spec(base: HighwayConfig, speeds_ms: list[float]) -> CampaignSpec:
    """Campaign spec of :func:`speed_sweep`."""
    return CampaignSpec(
        name="speed",
        scenario="highway",
        seed=base.seed,
        rounds=base.rounds,
        base=config_to_dict(base),
        axes=(axis("speed_ms", speeds_ms),),
    )


def speed_sweep(
    base: HighwayConfig, speeds_ms: list[float]
) -> list[SweepPoint]:
    """Highway losses vs pass speed (the drive-thru motivation, [1])."""
    return _run(speed_spec(base, speeds_ms))
