"""Multi-round execution and result aggregation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.protocol import CarqStats
from repro.errors import AnalysisError
from repro.mac.frames import NodeId
from repro.experiments.scenario import (
    RoundContext,
    UrbanScenarioConfig,
    build_urban_round,
)
from repro.trace.matrix import ReceptionMatrix


@dataclass(frozen=True)
class RoundOutcome:
    """Post-processed result of one round.

    Attributes
    ----------
    index:
        Round number (0-based).
    matrices:
        Car → its flow's reception matrix (cars whose flow was never
        received by anyone are absent).
    stats:
        Car → protocol counters.
    frames_sent:
        Node → frames transmitted (AP and cars), for overhead accounting.
    """

    index: int
    matrices: dict[NodeId, ReceptionMatrix]
    stats: dict[NodeId, CarqStats]
    frames_sent: dict[NodeId, int]


@dataclass(frozen=True)
class ExperimentResult:
    """All rounds of one experiment."""

    config: UrbanScenarioConfig
    rounds: list[RoundOutcome]

    def matrices_by_round(self) -> list[dict[NodeId, ReceptionMatrix]]:
        """Input shape expected by :func:`repro.analysis.stats.compute_table1`."""
        return [outcome.matrices for outcome in self.rounds]

    def matrices_for_flow(self, car: NodeId) -> list[ReceptionMatrix]:
        """All rounds' matrices of one car's flow (rounds missing it skipped)."""
        matrices = [
            outcome.matrices[car]
            for outcome in self.rounds
            if car in outcome.matrices
        ]
        if not matrices:
            raise AnalysisError(f"car {car} never associated in any round")
        return matrices


def collect_round(ctx: RoundContext, index: int) -> RoundOutcome:
    """Post-process a finished round into a :class:`RoundOutcome`."""
    car_ids = list(ctx.cars)
    matrices: dict[NodeId, ReceptionMatrix] = {}
    stats: dict[NodeId, CarqStats] = {}
    for car_id, car in ctx.cars.items():
        direct_by_car = {
            observer: ctx.capture.delivered_seqs(observer, car_id)
            for observer in car_ids
        }
        recovered = set(car.protocol.state.recovered)
        matrix = ReceptionMatrix.build(car_id, direct_by_car, recovered)
        if matrix is not None:
            matrices[car_id] = matrix
        stats[car_id] = car.protocol.stats
    frames_sent = {ctx.ap.node_id: ctx.ap.iface.frames_sent}
    for car_id, car in ctx.cars.items():
        frames_sent[car_id] = car.iface.frames_sent
    return RoundOutcome(
        index=index, matrices=matrices, stats=stats, frames_sent=frames_sent
    )


def run_urban_experiment(
    cfg: UrbanScenarioConfig, *, rounds: int | None = None
) -> ExperimentResult:
    """Run the urban testbed for the configured number of rounds.

    Parameters
    ----------
    cfg:
        Scenario configuration.
    rounds:
        Override the configured round count (used by quick tests and
        benchmark warm-ups).
    """
    n_rounds = rounds if rounds is not None else cfg.rounds
    outcomes = []
    for index in range(n_rounds):
        ctx = build_urban_round(cfg, index)
        ctx.run()
        outcomes.append(collect_round(ctx, index))
    return ExperimentResult(config=cfg, rounds=outcomes)
