"""Urban scenario configuration and per-round wiring (compatibility front).

The implementation lives in :mod:`repro.scenarios.urban` — the urban
plugin of the scenario registry — composed from the shared pieces in
:mod:`repro.scenarios.common` / :mod:`repro.scenarios.channels` /
:mod:`repro.scenarios.modes`.  This module re-exports the historical
names so existing imports keep working.
"""

from __future__ import annotations

from repro.scenarios.common import AP_NODE_ID, round_seed
from repro.scenarios.urban import (
    PlatoonConfig,
    RadioEnvironment,
    RoundContext,
    UrbanScenarioConfig,
    build_channel,
    build_platoon_mobility,
    build_urban_round,
)

#: Deprecated alias of :func:`repro.scenarios.common.round_seed` (kept for
#: callers of the once-private helper).
_round_seed = round_seed

__all__ = [
    "AP_NODE_ID",
    "PlatoonConfig",
    "RadioEnvironment",
    "RoundContext",
    "UrbanScenarioConfig",
    "build_channel",
    "build_platoon_mobility",
    "build_urban_round",
    "round_seed",
]
