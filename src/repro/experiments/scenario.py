"""Scenario configuration and per-round wiring.

A *round* is one platoon lap past the AP, simulated end-to-end with fresh
random streams — the unit the paper repeats 30 times.  The builder here
assembles everything: simulator, channel, medium, trace capture, the AP
and the vehicles (C-ARQ by default; baselines plug in through ``mode``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import CarqConfig
from repro.core.vehicle import VehicleNode
from repro.errors import ConfigurationError
from repro.mac.frames import NodeId
from repro.mac.medium import Medium
from repro.mobility.base import MobilityModel
from repro.mobility.idm import DriverProfile, simulate_platoon
from repro.mobility.profile import CurvatureSpeedProfile
from repro.mobility.static import StaticMobility
from repro.mobility.urban import UrbanTestbed, urban_loop
from repro.net.ap import AccessPoint, FlowConfig
from repro.radio.channel import Channel
from repro.radio.fading import RicianFading
from repro.radio.modulation import rate_by_name
from repro.radio.obstruction import BuildingObstruction
from repro.radio.pathloss import LogDistancePathLoss
from repro.radio.phy import RadioConfig
from repro.radio.shadowing import (
    CompositeShadowing,
    GudmundsonShadowing,
    TemporalTxShadowing,
)
from repro.sim import Simulator
from repro.trace.capture import TraceCollector

#: Node id of the (single) urban-testbed access point.
AP_NODE_ID: NodeId = NodeId(100)


@dataclass(frozen=True)
class RadioEnvironment:
    """Propagation and radio parameters of a scenario.

    The defaults are calibrated so the urban testbed reproduces the
    paper's loss levels (~23–29 % per car before cooperation) with a
    coverage window of roughly 120–145 packets per flow — see
    EXPERIMENTS.md for the calibration record.
    """

    pathloss_exponent: float = 3.7
    reference_loss_db: float = 40.0
    shadowing_sigma_db: float = 3.25
    shadowing_decorrelation_m: float = 18.0
    common_shadowing_sigma_db: float = 6.25
    common_shadowing_tau_s: float = 2.5
    rician_k: float = 4.0
    ap_tx_power_dbm: float = 19.0
    car_tx_power_dbm: float = 15.0
    rate_name: str = "dsss-1"
    building_loss_db: float = 31.0

    def ap_radio(self) -> RadioConfig:
        """PHY parameters of the access point."""
        return RadioConfig(
            tx_power_dbm=self.ap_tx_power_dbm, rate=rate_by_name(self.rate_name)
        )

    def car_radio(self) -> RadioConfig:
        """PHY parameters of a vehicle."""
        return RadioConfig(
            tx_power_dbm=self.car_tx_power_dbm, rate=rate_by_name(self.rate_name)
        )


@dataclass(frozen=True)
class PlatoonConfig:
    """Platoon composition and driving style.

    ``driver_styles`` entries are ``"normal"``, ``"timid"`` or
    ``"aggressive"``; the testbed default recreates the paper's platoon
    (experienced leader, inexperienced driver 2, tailgating driver 3).
    """

    n_cars: int = 3
    cruise_speed_ms: float = 5.6       # ≈ 20 km/h
    corner_speed_ms: float = 3.2
    initial_gap_m: float = 14.0
    driver_styles: tuple[str, ...] = ("normal", "timid", "aggressive")
    follower_speed_factor: float = 1.2
    acceleration_noise_std: float = 0.15

    def __post_init__(self) -> None:
        if self.n_cars < 1:
            raise ConfigurationError("need at least one car")
        valid = {"normal", "timid", "aggressive"}
        for style in self.driver_styles:
            if style not in valid:
                raise ConfigurationError(f"unknown driver style {style!r}")

    def driver_profiles(self) -> list[DriverProfile]:
        """One profile per car (styles repeat if fewer than ``n_cars``)."""
        profiles = []
        base = DriverProfile(acceleration_noise_std=self.acceleration_noise_std)
        for index in range(self.n_cars):
            style = self.driver_styles[index % len(self.driver_styles)]
            profile = {
                "normal": base,
                "timid": base.timid(),
                "aggressive": base.aggressive(),
            }[style]
            if index > 0:
                # Followers chase the leader; see repro.mobility.idm notes.
                profile = replace(profile, speed_factor=self.follower_speed_factor)
            profiles.append(profile)
        return profiles


@dataclass(frozen=True)
class UrbanScenarioConfig:
    """Everything defining the urban testbed experiment."""

    seed: int = 2008
    rounds: int = 30
    round_duration_s: float = 85.0
    packet_rate_hz: float = 5.0
    payload_bytes: int = 1000
    radio: RadioEnvironment = field(default_factory=RadioEnvironment)
    platoon: PlatoonConfig = field(default_factory=PlatoonConfig)
    carq: CarqConfig = field(default_factory=CarqConfig)

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ConfigurationError("need at least one round")
        if self.round_duration_s <= 0.0:
            raise ConfigurationError("round duration must be positive")

    def car_ids(self) -> list[NodeId]:
        """Vehicle node ids, platoon order (car 1 leads)."""
        return [NodeId(i + 1) for i in range(self.platoon.n_cars)]


@dataclass
class RoundContext:
    """Everything built for one round, ready to run."""

    sim: Simulator
    medium: Medium
    capture: TraceCollector
    testbed: UrbanTestbed
    ap: AccessPoint
    cars: dict[NodeId, VehicleNode]
    config: UrbanScenarioConfig

    def run(self) -> None:
        """Execute the round to its configured duration."""
        self.sim.run(until=self.config.round_duration_s)


def _round_seed(base_seed: int, round_index: int) -> int:
    """Independent per-round seed (rounds are i.i.d. repetitions)."""
    return base_seed + 7919 * (round_index + 1)


def build_platoon_mobility(
    cfg: UrbanScenarioConfig, sim: Simulator, testbed: UrbanTestbed
) -> list[MobilityModel]:
    """IDM trajectories for the round, with per-round driver variability."""
    rng = sim.streams.get("mobility")
    profiles = cfg.platoon.driver_profiles()
    # Humans are not metronomes: jitter speeds and gaps a little per round.
    jittered = []
    for profile in profiles:
        factor = float(rng.normal(1.0, 0.02))
        jittered.append(replace(profile, speed_factor=profile.speed_factor * factor))
    speed_profile = CurvatureSpeedProfile(
        testbed.track,
        cruise_speed=cfg.platoon.cruise_speed_ms,
        corner_speed=cfg.platoon.corner_speed_ms,
    )
    initial_gap = cfg.platoon.initial_gap_m * float(rng.uniform(0.85, 1.15))
    return list(
        simulate_platoon(
            testbed.track,
            speed_profile,
            jittered,
            duration=cfg.round_duration_s,
            rng=rng,
            initial_gap=initial_gap,
            lead_start_arc=testbed.start_arc_length,
        )
    )


def build_channel(
    cfg: UrbanScenarioConfig, sim: Simulator, testbed: UrbanTestbed | None = None
) -> Channel:
    """The propagation stack for one round."""
    radio = cfg.radio
    obstruction = None
    if testbed is not None and testbed.buildings:
        obstruction = BuildingObstruction(
            testbed.buildings, loss_per_building_db=radio.building_loss_db
        )
    per_link = GudmundsonShadowing(
        sim.streams.get("shadowing"),
        sigma_db=radio.shadowing_sigma_db,
        decorrelation_distance_m=radio.shadowing_decorrelation_m,
    )
    shadowing = per_link
    if radio.common_shadowing_sigma_db > 0.0:
        # AP-side common variation (passers-by at the window antenna):
        # hits every AP link at once — the source of joint losses.
        common = TemporalTxShadowing(
            sim.streams.get("shadowing-common"),
            sigma_db=radio.common_shadowing_sigma_db,
            tau_s=radio.common_shadowing_tau_s,
            hub=AP_NODE_ID,
        )
        shadowing = CompositeShadowing([per_link, common])
    return Channel(
        pathloss=LogDistancePathLoss(
            exponent=radio.pathloss_exponent,
            reference_loss_db=radio.reference_loss_db,
        ),
        shadowing=shadowing,
        fading=RicianFading(sim.streams.get("fading"), k_factor=radio.rician_k),
        obstruction=obstruction,
        rng=sim.streams.get("channel"),
    )


def build_urban_round(
    cfg: UrbanScenarioConfig,
    round_index: int,
    *,
    testbed: UrbanTestbed | None = None,
) -> RoundContext:
    """Wire one complete round of the urban testbed (C-ARQ protocol).

    Baseline variants reuse :func:`build_platoon_mobility` /
    :func:`build_channel` and substitute their own vehicle classes (see
    :mod:`repro.baselines`).
    """
    sim = Simulator(seed=_round_seed(cfg.seed, round_index))
    tb = testbed if testbed is not None else urban_loop()
    capture = TraceCollector()
    medium = Medium(sim, build_channel(cfg, sim, tb), trace=capture)

    mobilities = build_platoon_mobility(cfg, sim, tb)
    car_ids = cfg.car_ids()
    flows = [
        FlowConfig(
            destination=car_id,
            packet_rate_hz=cfg.packet_rate_hz,
            payload_bytes=cfg.payload_bytes,
        )
        for car_id in car_ids
    ]
    ap = AccessPoint(
        sim,
        medium,
        AP_NODE_ID,
        StaticMobility(tb.ap_position),
        cfg.radio.ap_radio(),
        sim.streams.get("ap"),
        flows,
    )
    cars: dict[NodeId, VehicleNode] = {}
    for car_id, mobility in zip(car_ids, mobilities):
        cars[car_id] = VehicleNode(
            sim,
            medium,
            car_id,
            mobility,
            cfg.radio.car_radio(),
            sim.streams.get(f"car-{car_id}"),
            AP_NODE_ID,
            cfg.carq,
            name=f"car-{car_id}",
        )
    ap.start()
    for car in cars.values():
        car.start()
    return RoundContext(
        sim=sim,
        medium=medium,
        capture=capture,
        testbed=tb,
        ap=ap,
        cars=cars,
        config=cfg,
    )
