"""The paper's experiment: configuration and published reference numbers."""

from __future__ import annotations

from repro.experiments.scenario import UrbanScenarioConfig
from repro.mac.frames import NodeId

#: Paper Table 1 — (lost-before %, lost-after %) per car, 30 rounds.
PAPER_TABLE1: dict[NodeId, tuple[float, float]] = {
    NodeId(1): (23.4, 10.5),
    NodeId(2): (26.9, 17.3),
    NodeId(3): (28.6, 15.7),
}

#: Paper Table 1 — mean packets transmitted by the AP per car per round.
PAPER_TX_BY_AP: dict[NodeId, float] = {
    NodeId(1): 130.4,
    NodeId(2): 143.0,
    NodeId(3): 121.4,
}


def paper_testbed_config(
    *, seed: int = 2008, rounds: int = 30
) -> UrbanScenarioConfig:
    """The configuration reproducing the paper's urban experiment.

    Three cars at ≈20 km/h on the Fig. 2 loop, one AP, 5 × 1000 B packets
    per second per car at 1 Mb/s, C-ARQ with the prototype's parameters
    (5 s coverage timeout, per-packet REQUESTs), 30 rounds.
    """
    return UrbanScenarioConfig(seed=seed, rounds=rounds)
