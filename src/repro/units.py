"""Unit conventions and conversion helpers used across the library.

Conventions
-----------
* time       — seconds (``float``)
* distance   — metres
* speed      — metres / second
* power      — dBm at API boundaries, watts internally where noted
* rate       — bits / second
* frequency  — hertz

The helpers below are deliberately tiny, pure functions so they can be used
in hot loops without indirection.
"""

from __future__ import annotations

import math

import numpy as np

# ---------------------------------------------------------------------------
# Scalar constants
# ---------------------------------------------------------------------------

#: Speed of light in vacuum [m/s].
SPEED_OF_LIGHT = 299_792_458.0

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380_649e-23

#: Reference temperature used for thermal-noise computations [K].
REFERENCE_TEMPERATURE_K = 290.0

#: Thermal noise power spectral density at 290 K [dBm/Hz] (≈ -174 dBm/Hz).
THERMAL_NOISE_DBM_PER_HZ = 10.0 * math.log10(
    BOLTZMANN * REFERENCE_TEMPERATURE_K
) + 30.0

#: One megabit per second, in bit/s.
MBPS = 1_000_000.0

#: One kilometre per hour, in m/s.
KMH = 1000.0 / 3600.0

#: Bytes → bits.
BITS_PER_BYTE = 8

#: One microsecond, in seconds.
MICROSECOND = 1e-6

#: One millisecond, in seconds.
MILLISECOND = 1e-3


# ---------------------------------------------------------------------------
# Decibel conversions
# ---------------------------------------------------------------------------

def db_to_linear(value_db: float) -> float:
    """Convert a ratio expressed in dB to a linear ratio."""
    return 10.0 ** (value_db / 10.0)


def linear_to_db(value: float) -> float:
    """Convert a linear power ratio to dB.

    Raises
    ------
    ValueError
        If *value* is not strictly positive (log of zero/negative power).
    """
    if value <= 0.0:
        raise ValueError(f"cannot express non-positive ratio {value!r} in dB")
    return 10.0 * math.log10(value)


def dbm_to_watts(power_dbm: float) -> float:
    """Convert a power in dBm to watts."""
    return 10.0 ** ((power_dbm - 30.0) / 10.0)


def watts_to_dbm(power_watts: float) -> float:
    """Convert a power in watts to dBm.

    Raises
    ------
    ValueError
        If *power_watts* is not strictly positive.
    """
    if power_watts <= 0.0:
        raise ValueError(f"cannot express non-positive power {power_watts!r} in dBm")
    return 10.0 * math.log10(power_watts) + 30.0


def dbm_sum(*powers_dbm: float) -> float:
    """Sum several powers expressed in dBm, returning dBm.

    Used by the interference model to accumulate concurrent transmissions.
    """
    if not powers_dbm:
        raise ValueError("dbm_sum() requires at least one power value")
    total_watts = sum(dbm_to_watts(p) for p in powers_dbm)
    return watts_to_dbm(total_watts)


def dbm_sum_batch(powers_dbm) -> float:
    """:func:`dbm_sum` over an array-like of powers, exactly.

    Accepts any 1-D array-like (``np.ndarray``, list, tuple) and returns
    the same float — bit for bit — as ``dbm_sum(*powers)``.  That pins
    two deliberate choices: the dBm→W ``pow`` runs through libm per
    element (NumPy's SIMD ``10**x`` differs in the last ulp), and the
    watts accumulate sequentially left-to-right (``np.sum``'s pairwise
    blocking would change the rounding for larger sets).  Only the
    exponent arithmetic vectorizes — ``(p - 30.0) / 10.0`` is the same
    float64 expression either way.  Empty input raises ``ValueError``
    like the scalar form.
    """
    values = np.asarray(powers_dbm, dtype=np.float64)
    if values.size == 0:
        raise ValueError("dbm_sum_batch() requires at least one power value")
    exponents = ((values - 30.0) / 10.0).tolist()
    return watts_to_dbm(sum(map((10.0).__pow__, exponents)))


# ---------------------------------------------------------------------------
# Common conversions
# ---------------------------------------------------------------------------

def kmh_to_ms(speed_kmh: float) -> float:
    """Convert km/h to m/s."""
    return speed_kmh * KMH


def ms_to_kmh(speed_ms: float) -> float:
    """Convert m/s to km/h."""
    return speed_ms / KMH


def bytes_to_bits(size_bytes: int) -> int:
    """Convert a byte count to bits."""
    return size_bytes * BITS_PER_BYTE


def transmission_time(size_bytes: int, rate_bps: float) -> float:
    """Airtime in seconds for *size_bytes* payload at *rate_bps*.

    This is the pure serialisation delay; PHY preamble/header overheads are
    added by :mod:`repro.mac.timing`.

    Raises
    ------
    ValueError
        If *rate_bps* is not strictly positive or *size_bytes* is negative.
    """
    if rate_bps <= 0.0:
        raise ValueError(f"rate must be positive, got {rate_bps!r}")
    if size_bytes < 0:
        raise ValueError(f"size must be non-negative, got {size_bytes!r}")
    return bytes_to_bits(size_bytes) / rate_bps


def thermal_noise_dbm(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Thermal noise floor for a receiver of the given bandwidth.

    Parameters
    ----------
    bandwidth_hz:
        Receiver bandwidth in Hz (e.g. 20 MHz for 802.11g, 22 MHz for DSSS).
    noise_figure_db:
        Receiver noise figure added on top of kTB.

    Raises
    ------
    ValueError
        If *bandwidth_hz* is not strictly positive.
    """
    if bandwidth_hz <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz!r}")
    return THERMAL_NOISE_DBM_PER_HZ + 10.0 * math.log10(bandwidth_hz) + noise_figure_db
