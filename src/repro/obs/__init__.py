"""Simulator observability: metrics registry, probes, span tracing.

Three layers, strictly opt-in:

* :mod:`repro.obs.registry` — a process-wide metrics registry (counters,
  gauges, log-bucketed histograms, key→cost tables).  Disabled by
  default; while disabled, every probe factory in
  :mod:`repro.obs.probes` returns ``None`` and the instrumented hot
  paths reduce to a single attribute load plus an ``is None`` test.
* :mod:`repro.obs.spans` — a wall-clock span tracer with a bounded ring
  buffer, exported as Chrome trace-event / Perfetto JSON by
  :mod:`repro.obs.export` (``repro trace-viz``).
* campaign telemetry — the executor snapshots the registry per task and
  streams the snapshots into a JSONL sidecar next to the result store
  (:class:`repro.campaign.store.MetricsLog`).

The contract that keeps all of this safe to enable in science runs:
instrumentation takes **no RNG draws** and never feeds back into the
simulation — it only counts and reads the wall clock — so the 3-arm
exhaustive/fast/batch A/B pin stays bit-identical with everything
switched on (``tests/scenarios/test_fast_path_ab.py``).

Because components capture their probe bundle at construction time,
enable the registry (and install a tracer) *before* building a round::

    from repro import obs

    with obs.instrumented() as tracer:
        row = plugin.run_round(config, round_index)
    snapshot = obs.registry().snapshot()
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Table,
    merge_snapshots,
    registry,
)
from repro.obs.spans import Span, SpanTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "Table",
    "clear_tracer",
    "disable",
    "enable",
    "enabled",
    "install_tracer",
    "instrumented",
    "merge_snapshots",
    "registry",
    "tracer",
]

_TRACER: SpanTracer | None = None


def enable() -> None:
    """Switch the process-wide metrics registry on."""
    registry().enable()


def disable() -> None:
    """Switch the process-wide metrics registry off."""
    registry().disable()


def enabled() -> bool:
    """Whether the process-wide metrics registry is on."""
    return registry().enabled


def install_tracer(span_tracer: SpanTracer) -> SpanTracer:
    """Make *span_tracer* the process-wide tracer and return it.

    Components capture :func:`tracer` at construction, so install before
    building the simulation that should be traced.
    """
    global _TRACER
    _TRACER = span_tracer
    return span_tracer


def clear_tracer() -> None:
    """Remove the process-wide tracer."""
    global _TRACER
    _TRACER = None


def tracer() -> SpanTracer | None:
    """The process-wide tracer, or ``None`` when tracing is off."""
    return _TRACER


@contextlib.contextmanager
def instrumented(*, capacity: int = 100_000) -> Iterator[SpanTracer]:
    """Enable metrics + tracing for a block, restoring prior state after.

    Resets the registry on entry so the block's snapshot reflects only
    the work inside it.  Yields the installed tracer.
    """
    reg = registry()
    was_enabled = reg.enabled
    previous_tracer = _TRACER
    reg.enable()
    reg.reset()
    span_tracer = install_tracer(SpanTracer(capacity=capacity))
    try:
        yield span_tracer
    finally:
        install_tracer(previous_tracer) if previous_tracer is not None else clear_tracer()
        if not was_enabled:
            reg.disable()
