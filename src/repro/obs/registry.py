"""The process-wide metrics registry.

Four metric primitives, all allocation-light and RNG-free:

* :class:`Counter` — a monotonically increasing integer.  Hot sites
  bump ``counter.value += n`` directly; there is deliberately no method
  call on the per-event path.
* :class:`Gauge` — tracks the last, extreme and mean of a sampled
  level (queue depth, candidate-set size).
* :class:`Histogram` — fixed log-spaced buckets.  Bucket bounds are a
  pure function of ``(lo, hi, per_decade)``, so histograms created
  independently (different workers, different rounds) merge exactly:
  merging is element-wise addition of bucket counts, which is
  associative and commutative by construction (the hypothesis property
  tests pin this).
* :class:`Table` — ``key → (count, total_seconds)``; the event-kernel
  cost-center accounting (``repro stats``) is one of these keyed by
  callback label.

A :class:`MetricsRegistry` owns named metrics and an ``enabled`` flag.
The flag gates *creation*, not recording: probe factories
(:mod:`repro.obs.probes`) return ``None`` while disabled, so the
instrumented components skip all metric work behind a single
``is None`` test.  ``snapshot()`` renders everything to plain JSON for
the campaign telemetry sidecar; :func:`merge_snapshots` folds snapshots
from many tasks/workers back together.
"""

from __future__ import annotations

import copy
from bisect import bisect_left
from typing import Any

from repro.errors import ObsError


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add *n* (hot sites bump :attr:`value` directly instead)."""
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A sampled level: last / min / max / mean of the observed values."""

    __slots__ = ("name", "last", "min", "max", "total", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.reset()

    def reset(self) -> None:
        self.last = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.total = 0.0
        self.samples = 0

    def set(self, value: float) -> None:
        self.last = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.total += value
        self.samples += 1

    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "gauge",
            "last": self.last,
            "min": self.min if self.samples else 0.0,
            "max": self.max if self.samples else 0.0,
            "mean": self.mean(),
            "samples": self.samples,
        }


def histogram_bounds(
    lo: float, hi: float, per_decade: int
) -> tuple[float, ...]:
    """Log-spaced bucket upper bounds covering ``[lo, hi]``.

    A pure function of its arguments: two histograms built with the same
    parameters — in different processes, at different times — get
    exactly the same bounds, which is what makes merging their bucket
    counts meaningful.
    """
    if lo <= 0 or hi <= lo:
        raise ObsError(f"need 0 < lo < hi, got lo={lo!r} hi={hi!r}")
    if per_decade < 1:
        raise ObsError(f"need per_decade >= 1, got {per_decade!r}")
    bounds: list[float] = []
    exponent = 0
    while True:
        bound = lo * 10.0 ** (exponent / per_decade)
        bounds.append(bound)
        if bound >= hi:
            return tuple(bounds)
        exponent += 1


class Histogram:
    """Fixed log-spaced buckets over ``[lo, hi]`` with flank buckets.

    ``counts`` has ``len(bounds) + 1`` slots: value ``v`` lands in the
    first bucket whose upper bound is ``>= v`` (``bisect_left``), and
    anything above the last bound lands in the final overflow slot.
    Merging two histograms with identical bounds is element-wise
    addition plus min/max/total folding — associative and commutative,
    pinned by the hypothesis property tests.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(
        self,
        name: str,
        *,
        lo: float = 1.0,
        hi: float = 1e6,
        per_decade: int = 3,
    ) -> None:
        self.name = name
        self.bounds = histogram_bounds(lo, hi, per_decade)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def bucket_index(self, value: float) -> int:
        """Index of the bucket *value* falls in."""
        return bisect_left(self.bounds, value)

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> None:
        """Fold *other* into this histogram (bounds must match)."""
        if other.bounds != self.bounds:
            raise ObsError(
                f"histogram {self.name!r}: merging incompatible bucket bounds"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the *q*-quantile sample.

        A bucketed estimate (exact only up to bucket resolution); the
        overflow bucket reports the observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ObsError(f"quantile must be in [0, 1], got {q!r}")
        if not self.count:
            return 0.0
        target = q * self.count
        running = 0
        for i, n in enumerate(self.counts):
            running += n
            if running >= target and n:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.max
        return self.max

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class Table:
    """``key → [count, total]`` accounting (event-kernel cost centers)."""

    __slots__ = ("name", "rows")

    def __init__(self, name: str) -> None:
        self.name = name
        self.rows: dict[str, list[float]] = {}

    def reset(self) -> None:
        self.rows.clear()

    def add(self, key: str, value: float) -> None:
        row = self.rows.get(key)
        if row is None:
            self.rows[key] = [1, value]
        else:
            row[0] += 1
            row[1] += value

    def top(self, n: int, *, by: str = "total") -> list[tuple[str, int, float]]:
        """``(key, count, total)`` rows sorted by *by* (``total``/``count``)."""
        index = 1 if by == "total" else 0
        ranked = sorted(
            self.rows.items(), key=lambda item: item[1][index], reverse=True
        )
        return [(key, int(row[0]), row[1]) for key, row in ranked[:n]]

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "table",
            "rows": {
                key: {"count": int(row[0]), "total": row[1]}
                for key, row in sorted(self.rows.items())
            },
        }


class MetricsRegistry:
    """Owns named metrics plus the process-wide enable flag.

    Metric accessors are get-or-create: the probe bundles in
    :mod:`repro.obs.probes` can be built once per component without
    worrying about registration order, and two components naming the
    same metric share the object.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}
        self._enabled = False

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def _get(self, name: str, cls: type, **kwargs: Any) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, **kwargs)
        elif type(metric) is not cls:
            raise ObsError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self,
        name: str,
        *,
        lo: float = 1.0,
        hi: float = 1e6,
        per_decade: int = 3,
    ) -> Histogram:
        return self._get(name, Histogram, lo=lo, hi=hi, per_decade=per_decade)

    def table(self, name: str) -> Table:
        return self._get(name, Table)

    def reset(self) -> None:
        """Zero every metric, keeping the objects (probes hold references)."""
        for metric in self._metrics.values():
            metric.reset()

    def clear(self) -> None:
        """Drop every metric object (test isolation; probes go stale)."""
        self._metrics.clear()

    def snapshot(self) -> dict[str, Any]:
        """All metrics as plain JSON, sorted by name."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry instance."""
    return _REGISTRY


def _merge_into(merged: dict[str, Any], name: str, snap: dict[str, Any]) -> None:
    kind = snap.get("type")
    current = merged.get(name)
    if current is None:
        merged[name] = copy.deepcopy(snap)
        return
    if current.get("type") != kind:
        raise ObsError(f"metric {name!r}: snapshots disagree on type")
    if kind == "counter":
        current["value"] += snap["value"]
    elif kind == "gauge":
        samples = snap["samples"]
        if samples:
            if not current["samples"]:
                current["min"], current["max"] = snap["min"], snap["max"]
            else:
                current["min"] = min(current["min"], snap["min"])
                current["max"] = max(current["max"], snap["max"])
            current["samples"] += samples
            # A merged gauge has no meaningful "last"; keep the mean exact.
            total = current["mean"] * (current["samples"] - samples) + snap["mean"] * samples
            current["mean"] = total / current["samples"]
            current["last"] = snap["last"]
    elif kind == "histogram":
        if current["bounds"] != snap["bounds"]:
            raise ObsError(f"metric {name!r}: snapshots disagree on bucket bounds")
        current["counts"] = [a + b for a, b in zip(current["counts"], snap["counts"])]
        if snap["count"]:
            if not current["count"]:
                current["min"], current["max"] = snap["min"], snap["max"]
            else:
                current["min"] = min(current["min"], snap["min"])
                current["max"] = max(current["max"], snap["max"])
        current["count"] += snap["count"]
        current["total"] += snap["total"]
    elif kind == "table":
        rows = current["rows"]
        for key, row in snap["rows"].items():
            existing = rows.get(key)
            if existing is None:
                rows[key] = dict(row)
            else:
                existing["count"] += row["count"]
                existing["total"] += row["total"]
    else:
        raise ObsError(f"metric {name!r}: unknown snapshot type {kind!r}")


def merge_snapshots(snapshots: list[dict[str, Any]]) -> dict[str, Any]:
    """Fold many :meth:`MetricsRegistry.snapshot` dicts into one.

    Counters, histogram buckets and table rows add; gauge extremes fold
    by min/max with an exact weighted mean.  The fold is type-driven
    from the ``"type"`` field, so snapshots from different code versions
    merge as long as the metric shapes agree.
    """
    merged: dict[str, Any] = {}
    for snap in snapshots:
        for name, metric_snap in snap.items():
            _merge_into(merged, name, metric_snap)
    return {name: merged[name] for name in sorted(merged)}
