"""Wall-clock span tracing with a bounded ring buffer.

A :class:`SpanTracer` records nested begin/end intervals — round →
slot → broadcast → batch-kernel in the simulator's case — against the
wall clock (``time.perf_counter_ns``; spans measure where real time
goes, not simulated time; the simulated instant rides along in the span
args).  Completed spans land in a ``deque(maxlen=capacity)`` ring:
a dense round can emit millions of spans, and the ring keeps the most
recent *capacity* of them while counting what it dropped, so memory
stays bounded without a config knob per scenario.

Export to Chrome trace-event / Perfetto JSON lives in
:mod:`repro.obs.export`; install a process-wide tracer with
:func:`repro.obs.install_tracer` (or :func:`repro.obs.instrumented`)
**before** constructing the simulator/medium — both capture the tracer
at ``__init__``.
"""

from __future__ import annotations

import contextlib
import time
from collections import deque
from typing import Any, Iterator

from repro.errors import ObsError


class Span:
    """One completed interval: name, category, timing, nesting depth."""

    __slots__ = ("name", "cat", "start_ns", "dur_ns", "depth", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        start_ns: int,
        dur_ns: int,
        depth: int,
        args: dict[str, Any] | None,
    ) -> None:
        self.name = name
        self.cat = cat
        self.start_ns = start_ns
        self.dur_ns = dur_ns
        self.depth = depth
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, cat={self.cat!r}, "
            f"dur={self.dur_ns / 1e6:.3f} ms, depth={self.depth})"
        )


class SpanTracer:
    """Begin/end span recording into a bounded ring buffer.

    Spans follow stack discipline: :meth:`end` always closes the
    innermost open span.  Completed spans are kept in completion order
    (children before their parent — the Chrome trace format orders by
    timestamp itself, so export does not care).
    """

    def __init__(self, *, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ObsError(f"tracer capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        self.origin_ns = time.perf_counter_ns()
        #: Completed spans dropped because the ring was full.
        self.dropped = 0
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._stack: list[tuple[str, str, int, dict[str, Any] | None]] = []

    def __len__(self) -> int:
        return len(self._spans)

    @property
    def open_depth(self) -> int:
        """Number of currently open (unclosed) spans."""
        return len(self._stack)

    def begin(self, name: str, cat: str = "sim", **args: Any) -> None:
        """Open a span; keyword arguments become Perfetto ``args``."""
        self._stack.append(
            (name, cat, time.perf_counter_ns(), args or None)
        )

    def end(self, **extra: Any) -> None:
        """Close the innermost open span, merging *extra* into its args."""
        end_ns = time.perf_counter_ns()
        if not self._stack:
            raise ObsError("SpanTracer.end() with no open span")
        name, cat, start_ns, args = self._stack.pop()
        if extra:
            args = {**(args or {}), **extra}
        if len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append(
            Span(name, cat, start_ns, end_ns - start_ns, len(self._stack), args)
        )

    @contextlib.contextmanager
    def span(self, name: str, cat: str = "sim", **args: Any) -> Iterator[None]:
        """``with tracer.span("round", scenario="urban"): ...``"""
        self.begin(name, cat, **args)
        try:
            yield
        finally:
            self.end()

    def finish(self) -> None:
        """Close every span still open (export-time cleanup)."""
        while self._stack:
            self.end()

    def spans(self) -> list[Span]:
        """Completed spans in completion order (a copy)."""
        return list(self._spans)

    def clear(self) -> None:
        """Drop all completed spans and the dropped-count."""
        self._spans.clear()
        self._stack.clear()
        self.dropped = 0
