"""Probe bundles: the contact surface between hot code and the registry.

Each instrumented component asks for its bundle once, at construction::

    self._obs = kernel_probes()   # None while the registry is disabled

and every hot site is then a single guarded line::

    if self._obs is not None:
        self._obs.pushed.value += 1

While the registry is disabled the factories return ``None``, so the
per-event cost of instrumentation is one attribute load plus an
``is None`` test — the ≤2% disabled-overhead budget pinned by
``benchmarks/bench_obs.py``.  None of the probes consume RNG or touch
simulation state; they only count and (for cost centers) read the wall
clock, which is what keeps the A/B bit-identity pin valid with
everything enabled.

The probe catalog (names, types, recording sites) is documented in
``docs/OBSERVABILITY.md``; keep the two in sync.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.registry import MetricsRegistry, registry


def callback_label(callback: Callable[..., Any]) -> str:
    """A low-cardinality cost-center label for an event callback.

    Bound methods label as ``Class.method``.  Process resumptions all
    funnel through ``Process._resume``, which would hide every protocol
    loop behind one row — those are refined to ``process:<generator>``
    (e.g. ``process:_hello_loop``) using the generator function's name,
    which is shared across instances, so cardinality stays bounded by
    the code, not the topology.
    """
    qualname = getattr(callback, "__qualname__", None)
    if qualname is None:
        return repr(callback)
    if qualname.endswith("Process._resume"):
        process = getattr(callback, "__self__", None)
        generator = getattr(process, "_generator", None)
        name = getattr(generator, "__name__", None)
        if name:
            return f"process:{name}"
    return qualname


class KernelProbes:
    """Event-kernel metrics: push/fire/cancel counts, depth, cost centers.

    The three ``wheel_*`` probes watch the slot-wheel scheduler (the
    default event queue): how many calendar slots hold pending events,
    how many entries sit in the far-future overflow tier, and how many
    pushes were routed there.  A healthy workload keeps overflow pushes
    near zero — a climbing counter means event times routinely land past
    the wheel horizon and the bucket width deserves a look.
    """

    __slots__ = (
        "pushed", "fired", "cancelled", "depth", "costs",
        "wheel_slots", "wheel_overflow", "overflow_pushed",
    )

    def __init__(self, reg: MetricsRegistry) -> None:
        self.pushed = reg.counter("sim.events_pushed")
        self.fired = reg.counter("sim.events_fired")
        self.cancelled = reg.counter("sim.events_cancelled")
        self.depth = reg.gauge("sim.queue_depth")
        self.costs = reg.table("sim.cost_centers")
        self.wheel_slots = reg.gauge("sim.wheel_slots")
        self.wheel_overflow = reg.gauge("sim.wheel_overflow")
        self.overflow_pushed = reg.counter("sim.wheel_overflow_pushes")

    def record_fire(
        self, callback: Callable[..., Any], seconds: float, depth: int
    ) -> None:
        """Account one fired event: count, queue depth, cost center."""
        self.fired.value += 1
        self.depth.set(depth)
        self.costs.add(callback_label(callback), seconds)


class MediumProbes:
    """Reception-ladder metrics: broadcasts, culling, batch-vs-scalar."""

    __slots__ = (
        "broadcasts",
        "batch_broadcasts",
        "scalar_broadcasts",
        "candidates",
        "admitted",
        "lanes",
        "frame_end_batch",
        "frame_end_scalar",
        "delivery_lanes",
        "coalesced_broadcasts",
        "scalar_floor_calls",
    )

    def __init__(self, reg: MetricsRegistry) -> None:
        self.broadcasts = reg.counter("medium.broadcasts")
        self.batch_broadcasts = reg.counter("medium.batch_broadcasts")
        self.scalar_broadcasts = reg.counter("medium.scalar_broadcasts")
        self.candidates = reg.counter("medium.candidates_before_cull")
        self.admitted = reg.counter("medium.candidates_after_cull")
        self.lanes = reg.histogram("medium.batch_lanes", lo=1.0, hi=1e4)
        self.frame_end_batch = reg.counter("medium.frame_end_batch")
        self.frame_end_scalar = reg.counter("medium.frame_end_scalar")
        # Broadcasts whose candidate lanes rode a concatenated
        # cross-broadcast pass (the instant's drain pooled enough lanes
        # to clear the vectorization floor), and scalar channel.sample calls issued
        # by the medium's reception paths (the legacy sub-batch_min loop
        # and the coalescer's scalar floor) — the before/after pair the
        # cross-broadcast bench compares.
        self.coalesced_broadcasts = reg.counter("medium.coalesced_broadcasts")
        self.scalar_floor_calls = reg.counter("medium.scalar_floor_calls")
        # Receivers per *coalesced* frame-end delivery (the batched
        # protocol-delivery path dispatches one event per broadcast and
        # fans out to every successful receiver inside it).
        self.delivery_lanes = reg.histogram("medium.delivery_lanes", lo=1.0, hi=1e4)

    def on_broadcast(self, candidates: int, admitted: int, batch: bool) -> None:
        """Account one transmission's whole reception pass."""
        self.broadcasts.value += 1
        self.candidates.value += candidates
        self.admitted.value += admitted
        if batch:
            self.batch_broadcasts.value += 1
        else:
            self.scalar_broadcasts.value += 1


class ProtocolProbes:
    """C-ARQ frame-level counts (HELLO / REQUEST / coop-data, buffering)."""

    __slots__ = (
        "hello_tx",
        "hello_rx",
        "request_tx",
        "request_rx",
        "coop_data_tx",
        "coop_data_rx",
        "responses_suppressed",
    )

    def __init__(self, reg: MetricsRegistry) -> None:
        self.hello_tx = reg.counter("proto.hello_tx")
        self.hello_rx = reg.counter("proto.hello_rx")
        self.request_tx = reg.counter("proto.request_tx")
        self.request_rx = reg.counter("proto.request_rx")
        self.coop_data_tx = reg.counter("proto.coop_data_tx")
        self.coop_data_rx = reg.counter("proto.coop_data_rx")
        self.responses_suppressed = reg.counter("proto.responses_suppressed")


class BufferProbes:
    """PacketBuffer lookup outcomes and capacity-pressure evictions."""

    __slots__ = ("hits", "misses", "evictions")

    def __init__(self, reg: MetricsRegistry) -> None:
        self.hits = reg.counter("buffer.hits")
        self.misses = reg.counter("buffer.misses")
        self.evictions = reg.counter("buffer.evictions")


def kernel_probes() -> KernelProbes | None:
    """Event-kernel probe bundle, or ``None`` while metrics are disabled."""
    reg = registry()
    return KernelProbes(reg) if reg.enabled else None


def medium_probes() -> MediumProbes | None:
    """Medium probe bundle, or ``None`` while metrics are disabled."""
    reg = registry()
    return MediumProbes(reg) if reg.enabled else None


def protocol_probes() -> ProtocolProbes | None:
    """Protocol probe bundle, or ``None`` while metrics are disabled."""
    reg = registry()
    return ProtocolProbes(reg) if reg.enabled else None


def buffer_probes() -> BufferProbes | None:
    """Buffer probe bundle, or ``None`` while metrics are disabled."""
    reg = registry()
    return BufferProbes(reg) if reg.enabled else None
