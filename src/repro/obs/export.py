"""Exports: Perfetto/Chrome trace JSON and the ``repro stats`` report.

The trace document follows the Chrome trace-event JSON object format —
``{"traceEvents": [...]}`` with complete (``"ph": "X"``) events whose
``ts``/``dur`` are microseconds — which https://ui.perfetto.dev loads
directly.  :func:`validate_chrome_trace` is the schema check CI's
obs-smoke job runs against every exported file; export itself validates
before writing, so a malformed document can never reach disk silently.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.errors import ObsError
from repro.ioutil import atomic_write_text
from repro.obs.spans import SpanTracer


def chrome_trace(
    tracer: SpanTracer, *, metadata: dict[str, Any] | None = None
) -> dict[str, Any]:
    """Render a tracer's completed spans as a Chrome trace document.

    All spans go on one pid/tid: they were recorded by one thread with
    stack discipline, so Perfetto reconstructs the nesting from the
    timestamps alone.
    """
    origin = tracer.origin_ns
    events = []
    for span in tracer.spans():
        event: dict[str, Any] = {
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": (span.start_ns - origin) / 1000.0,
            "dur": span.dur_ns / 1000.0,
            "pid": 0,
            "tid": 0,
        }
        if span.args:
            event["args"] = span.args
        events.append(event)
    events.sort(key=lambda event: event["ts"])
    document: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata or tracer.dropped:
        document["otherData"] = {
            **(metadata or {}),
            "dropped_spans": tracer.dropped,
        }
    return document


def validate_chrome_trace(document: Any) -> None:
    """Raise :class:`ObsError` unless *document* is a loadable trace.

    Checks the subset of the Chrome trace-event format this exporter
    emits: a JSON object with a ``traceEvents`` list of complete events
    carrying string names/categories, numeric non-negative ``ts``/
    ``dur``, integer ``pid``/``tid``, and JSON-object ``args`` if any.
    """
    if not isinstance(document, dict):
        raise ObsError("trace document must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ObsError("trace document needs a 'traceEvents' list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ObsError(f"traceEvents[{i}] is not an object")
        context = f"traceEvents[{i}] ({event.get('name')!r})"
        for key in ("name", "cat"):
            if not isinstance(event.get(key), str):
                raise ObsError(f"{context}: {key!r} must be a string")
        if event.get("ph") != "X":
            raise ObsError(f"{context}: expected complete event ph='X'")
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                raise ObsError(f"{context}: {key!r} must be a number >= 0")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ObsError(f"{context}: {key!r} must be an integer")
        if "args" in event and not isinstance(event["args"], dict):
            raise ObsError(f"{context}: 'args' must be an object")


def write_chrome_trace(
    tracer: SpanTracer, path, *, metadata: dict[str, Any] | None = None
) -> dict[str, Any]:
    """Validate and write the trace JSON; returns the document."""
    document = chrome_trace(tracer, metadata=metadata)
    validate_chrome_trace(document)
    # Atomic replace: a half-written trace JSON fails Perfetto's parser
    # with no hint that an interrupt (not the exporter) tore it.
    atomic_write_text(os.fspath(path), json.dumps(document) + "\n")
    return document


# -- the ``repro stats`` breakdown -------------------------------------------


def _fmt_count(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e4:
        return f"{value / 1e3:.1f}k"
    return f"{value:,.0f}" if value == int(value) else f"{value:,.1f}"


def _counter(snapshot: dict[str, Any], name: str) -> int:
    metric = snapshot.get(name)
    return metric["value"] if metric else 0


def render_stats_report(
    snapshot: dict[str, Any],
    *,
    elapsed_s: float | None = None,
    top: int = 12,
) -> str:
    """Human-readable breakdown of a metrics snapshot.

    The event-kernel section leads and names the top cost centers with
    call counts — the "which callbacks eat the events/s budget" answer
    the ROADMAP's kernel-ceiling work needs.
    """
    lines: list[str] = []
    known: set[str] = set()

    def counter(name: str) -> int:
        known.add(name)
        return _counter(snapshot, name)

    pushed = counter("sim.events_pushed")
    fired = counter("sim.events_fired")
    cancelled = counter("sim.events_cancelled")
    lines.append("event kernel")
    lines.append(f"  events pushed     {_fmt_count(pushed):>10}")
    lines.append(f"  events fired      {_fmt_count(fired):>10}")
    lines.append(f"  events cancelled  {_fmt_count(cancelled):>10}")
    if elapsed_s and fired:
        lines.append(
            f"  events/s          {_fmt_count(fired / elapsed_s):>10}"
            f"  (over {elapsed_s:.2f} s wall)"
        )
    depth = snapshot.get("sim.queue_depth")
    known.add("sim.queue_depth")
    if depth and depth.get("samples"):
        lines.append(
            f"  queue depth       max {_fmt_count(depth['max'])}, "
            f"mean {depth['mean']:.1f}"
        )
    slots = snapshot.get("sim.wheel_slots")
    overflow = snapshot.get("sim.wheel_overflow")
    overflow_pushes = counter("sim.wheel_overflow_pushes")
    known.update(("sim.wheel_slots", "sim.wheel_overflow"))
    if (slots and slots.get("samples")) or overflow_pushes:
        # Peaks, not the end-of-run level: the wheel is drained (near 0)
        # by the time the snapshot is taken.
        occupied = slots["max"] if slots else 0
        deferred = overflow["max"] if overflow else 0
        lines.append(
            f"  wheel             {_fmt_count(occupied):>10} slots occupied peak, "
            f"{_fmt_count(deferred)} beyond horizon peak "
            f"({_fmt_count(overflow_pushes)} overflow pushes)"
        )
    costs = snapshot.get("sim.cost_centers")
    known.add("sim.cost_centers")
    if costs and costs["rows"]:
        lines.append("  top cost centers (by cumulative callback wall time)")
        ranked = sorted(
            costs["rows"].items(),
            key=lambda item: item[1]["total"],
            reverse=True,
        )
        grand_total = sum(row["total"] for _, row in ranked) or 1.0
        for name, row in ranked[:top]:
            share = 100.0 * row["total"] / grand_total
            lines.append(
                f"    {name:<42} {_fmt_count(row['count']):>9} calls "
                f"{row['total'] * 1e3:>9.1f} ms  {share:>4.1f}%"
            )

    broadcasts = counter("medium.broadcasts")
    if broadcasts:
        batch = counter("medium.batch_broadcasts")
        scalar = counter("medium.scalar_broadcasts")
        before = counter("medium.candidates_before_cull")
        after = counter("medium.candidates_after_cull")
        lines.append("medium")
        lines.append(
            f"  broadcasts        {_fmt_count(broadcasts):>10}"
            f"  (batch {_fmt_count(batch)} / scalar {_fmt_count(scalar)})"
        )
        culled = 100.0 * (1.0 - after / before) if before else 0.0
        lines.append(
            f"  candidates        {_fmt_count(before):>10} before cull, "
            f"{_fmt_count(after)} admitted ({culled:.1f}% culled)"
        )
        lanes = snapshot.get("medium.batch_lanes")
        known.update(("medium.batch_lanes", "medium.frame_end_batch",
                      "medium.frame_end_scalar"))
        if lanes and lanes["count"]:
            mean_lanes = lanes["total"] / lanes["count"]
            lines.append(
                f"  batch lanes       mean {mean_lanes:.1f}, "
                f"max {_fmt_count(lanes['max'])}"
            )
        delivery = snapshot.get("medium.delivery_lanes")
        known.add("medium.delivery_lanes")
        if delivery and delivery["count"]:
            mean_rx = delivery["total"] / delivery["count"]
            lines.append(
                f"  delivery lanes    mean {mean_rx:.1f} receivers per "
                f"coalesced frame end, max {_fmt_count(delivery['max'])}"
            )
    else:
        known.update((
            "medium.batch_broadcasts", "medium.scalar_broadcasts",
            "medium.candidates_before_cull", "medium.candidates_after_cull",
            "medium.batch_lanes", "medium.frame_end_batch",
            "medium.frame_end_scalar", "medium.delivery_lanes",
        ))

    hello_tx = counter("proto.hello_tx")
    request_tx = counter("proto.request_tx")
    coop_tx = counter("proto.coop_data_tx")
    if hello_tx or request_tx or coop_tx:
        lines.append("protocol")
        lines.append(
            f"  HELLO             {_fmt_count(hello_tx):>10} tx / "
            f"{_fmt_count(counter('proto.hello_rx'))} rx"
        )
        lines.append(
            f"  REQUEST           {_fmt_count(request_tx):>10} tx / "
            f"{_fmt_count(counter('proto.request_rx'))} rx"
        )
        lines.append(
            f"  coop data         {_fmt_count(coop_tx):>10} tx / "
            f"{_fmt_count(counter('proto.coop_data_rx'))} rx "
            f"({_fmt_count(counter('proto.responses_suppressed'))} suppressed)"
        )
    else:
        known.update((
            "proto.hello_rx", "proto.request_rx", "proto.coop_data_rx",
            "proto.responses_suppressed",
        ))

    hits = counter("buffer.hits")
    misses = counter("buffer.misses")
    if hits or misses:
        ratio = 100.0 * hits / (hits + misses) if hits + misses else 0.0
        lines.append("packet buffer")
        lines.append(
            f"  lookups           {_fmt_count(hits + misses):>10}"
            f"  ({ratio:.1f}% hits, "
            f"{_fmt_count(counter('buffer.evictions'))} evictions)"
        )
    else:
        known.add("buffer.evictions")

    other = sorted(set(snapshot) - known)
    if other:
        lines.append("other")
        for name in other:
            metric = snapshot[name]
            if metric.get("type") == "counter":
                lines.append(f"  {name:<32} {_fmt_count(metric['value']):>10}")
            else:
                lines.append(f"  {name:<32} ({metric.get('type')})")
    return "\n".join(lines)
